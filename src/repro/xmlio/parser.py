"""A from-scratch, incremental (pull) XML 1.0 parser with namespaces.

The parser is a single forward scan over the input string.  It is
*streaming* in the sense the paper requires: events are produced one at
a time from a generator, so a consumer can stop early (lazy evaluation)
or run with O(depth) memory.  Well-formedness is enforced as we go:
tag balance, attribute uniqueness, single root element, legal entity
references, and namespace-prefix declarations.

Supported syntax: prolog (XML declaration), elements, attributes,
character data, CDATA sections, comments, processing instructions,
the five built-in entities, and decimal/hex character references.
DOCTYPE declarations are skipped (internal subsets are not expanded —
external DTDs never are in a security-conscious parser).

Each markup construct is handled by a ``_handle_*`` method so the
fast-path scanner (:mod:`repro.xmlio.scanner`) can reuse this
character-level logic verbatim whenever one of its bulk regexes
declines an input: the two parsers share state layout (`_pos`,
`_ns`, `_open_tags`, `_saw_root`) and therefore error semantics.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ParseError
from repro.qname import NamespaceBindings, QName
from repro.xmlio.events import (
    Comment,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
    Text,
)

_BUILTIN_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

_NAME_START = set("_:")
_NAME_CHARS = set("_:-.")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_CHARS


class XMLPullParser:
    """Incremental XML parser over a complete input string.

    Usage::

        for event in XMLPullParser(text):
            ...

    The constructor does no work; parsing happens as events are pulled.
    """

    def __init__(self, text: str, base_uri: str = ""):
        self._text = text
        self._pos = 0
        self._base_uri = base_uri
        self._line = 1
        self._line_start = 0
        self._ns = NamespaceBindings()
        self._open_tags: list[QName] = []
        self._saw_root = False

    # -- error/reporting helpers ------------------------------------------

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._line, self._pos - self._line_start + 1)

    def _advance_lines(self, start: int, end: int) -> None:
        chunk = self._text
        nl = chunk.count("\n", start, end)
        if nl:
            self._line += nl
            self._line_start = chunk.rfind("\n", start, end) + 1

    # -- low-level scanning -------------------------------------------------

    def _skip_ws(self) -> None:
        text, pos = self._text, self._pos
        n = len(text)
        start = pos
        while pos < n and text[pos] in " \t\r\n":
            pos += 1
        self._advance_lines(start, pos)
        self._pos = pos

    def _expect(self, literal: str) -> None:
        if not self._text.startswith(literal, self._pos):
            raise self._error(f"expected {literal!r}")
        self._pos += len(literal)

    def _scan_name(self) -> str:
        text, pos = self._text, self._pos
        if pos >= len(text) or not _is_name_start(text[pos]):
            raise self._error("expected an XML name")
        end = pos + 1
        n = len(text)
        while end < n and _is_name_char(text[end]):
            end += 1
        self._pos = end
        return text[pos:end]

    def _resolve_entities(self, raw: str, in_attribute: bool) -> str:
        """Expand entity and character references in ``raw``.

        Attribute values are whitespace-normalized *before* expansion,
        so character references to whitespace survive (per XML 1.0
        attribute-value normalization).
        """
        if in_attribute:
            raw = raw.replace("\t", " ").replace("\n", " ").replace("\r", " ")
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        n = len(raw)
        while i < n:
            amp = raw.find("&", i)
            if amp < 0:
                out.append(raw[i:])
                break
            out.append(raw[i:amp])
            semi = raw.find(";", amp + 1)
            if semi < 0:
                raise self._error("unterminated entity reference")
            name = raw[amp + 1: semi]
            if name.startswith("#x") or name.startswith("#X"):
                try:
                    out.append(chr(int(name[2:], 16)))
                except ValueError:
                    raise self._error(f"bad character reference &{name};") from None
            elif name.startswith("#"):
                try:
                    out.append(chr(int(name[1:])))
                except ValueError:
                    raise self._error(f"bad character reference &{name};") from None
            elif name in _BUILTIN_ENTITIES:
                out.append(_BUILTIN_ENTITIES[name])
            else:
                raise self._error(f"undefined entity &{name};")
            i = semi + 1
        return "".join(out)

    # -- structured pieces --------------------------------------------------

    def _scan_attributes(self) -> tuple[list[tuple[str, str]], int]:
        """Scan ``name="value"`` pairs up to (but excluding) ``>`` / ``/>``.

        Returns raw (lexical-name, value) pairs; namespace processing
        happens in the caller once declarations are known.
        """
        attrs: list[tuple[str, str]] = []
        while True:
            self._skip_ws()
            ch = self._text[self._pos: self._pos + 1]
            if ch in (">", "/", ""):
                return attrs, self._pos
            name = self._scan_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            quote = self._text[self._pos: self._pos + 1]
            if quote not in ('"', "'"):
                raise self._error("attribute value must be quoted")
            self._pos += 1
            end = self._text.find(quote, self._pos)
            if end < 0:
                raise self._error("unterminated attribute value")
            raw = self._text[self._pos: end]
            if "<" in raw:
                raise self._error("'<' not allowed in attribute value")
            self._advance_lines(self._pos, end)
            self._pos = end + 1
            attrs.append((name, self._resolve_entities(raw, in_attribute=True)))

    # -- construct handlers -------------------------------------------------
    #
    # Each handler consumes exactly one markup construct starting at
    # ``pos`` (which must be ``self._pos``), mutates parser state, and
    # returns the event(s) to emit.  The fast-path scanner calls these
    # whenever its regexes decline a construct.

    def _skip_xml_decl(self) -> None:
        """Skip an optional XML declaration at the current position."""
        text = self._text
        if text.startswith("<?xml", self._pos) and \
                text[self._pos + 5: self._pos + 6] in " \t\r\n?":
            end = text.find("?>", self._pos)
            if end < 0:
                raise self._error("unterminated XML declaration")
            self._advance_lines(self._pos, end)
            self._pos = end + 2

    def _handle_comment(self, pos: int) -> Comment:
        text = self._text
        end = text.find("-->", pos + 4)
        if end < 0:
            raise self._error("unterminated comment")
        body = text[pos + 4: end]
        if "--" in body:
            raise self._error("'--' not allowed inside a comment")
        self._advance_lines(pos, end)
        self._pos = end + 3
        return Comment(body)

    def _handle_cdata(self, pos: int) -> Text:
        text = self._text
        if not self._open_tags:
            raise self._error("CDATA section outside the root element")
        end = text.find("]]>", pos + 9)
        if end < 0:
            raise self._error("unterminated CDATA section")
        self._advance_lines(pos, end)
        self._pos = end + 3
        return Text(text[pos + 9: end])

    def _handle_pi(self, pos: int) -> ProcessingInstruction:
        text = self._text
        end = text.find("?>", pos + 2)
        if end < 0:
            raise self._error("unterminated processing instruction")
        self._pos = pos + 2
        target = self._scan_name()
        if target.lower() == "xml":
            raise self._error("processing-instruction target 'xml' is reserved")
        body = text[self._pos: end].lstrip(" \t\r\n")
        self._advance_lines(self._pos, end)
        self._pos = end + 2
        return ProcessingInstruction(target, body)

    def _handle_doctype(self, pos: int) -> None:
        # Skip, tracking bracket nesting for internal subsets.
        text = self._text
        n = len(text)
        depth = 0
        i = pos + 9
        while i < n:
            c = text[i]
            if c == "[":
                depth += 1
            elif c == "]":
                depth -= 1
            elif c == ">" and depth <= 0:
                break
            i += 1
        if i >= n:
            raise self._error("unterminated DOCTYPE declaration")
        self._advance_lines(pos, i)
        self._pos = i + 1

    def _handle_end_tag(self, pos: int) -> EndElement:
        self._pos = pos + 2
        name = self._scan_name()
        self._skip_ws()
        self._expect(">")
        if not self._open_tags:
            raise self._error(f"closing tag </{name}> with no open element")
        expected = self._open_tags.pop()
        lexical = f"{expected.prefix}:{expected.local}" if expected.prefix \
            else expected.local
        if name != lexical:
            raise self._error(f"mismatched closing tag </{name}>, expected </{lexical}>")
        self._ns.pop()
        return EndElement(expected)

    def _handle_start_tag(self, pos: int) -> tuple[Event, ...]:
        text = self._text
        ns = self._ns
        self._pos = pos + 1
        if not self._saw_root and not self._open_tags:
            self._saw_root = True
        elif not self._open_tags:
            raise self._error("document must have exactly one root element")
        lexical = self._scan_name()
        raw_attrs, _ = self._scan_attributes()

        decls: list[tuple[str, str]] = []
        plain: list[tuple[str, str]] = []
        for aname, avalue in raw_attrs:
            if aname == "xmlns":
                decls.append(("", avalue))
            elif aname.startswith("xmlns:"):
                prefix = aname[6:]
                if not avalue:
                    raise self._error(f"cannot undeclare prefix '{prefix}' in XML 1.0")
                decls.append((prefix, avalue))
            else:
                plain.append((aname, avalue))

        ns.push(dict(decls))
        default_uri = ns.lookup("") or ""

        try:
            name = QName.parse(lexical, ns, default_uri)
        except LookupError as exc:
            raise self._error(str(exc)) from None
        attributes: list[tuple[QName, str]] = []
        seen: set[QName] = set()
        for aname, avalue in plain:
            try:
                qn = QName.parse(aname, ns, default_uri="")
            except LookupError as exc:
                raise self._error(str(exc)) from None
            if qn in seen:
                raise self._error(f"duplicate attribute {aname!r}")
            seen.add(qn)
            attributes.append((qn, avalue))

        self._skip_ws()
        if text.startswith("/>", self._pos):
            self._pos += 2
            ns.pop()
            return (StartElement(name, tuple(attributes), tuple(decls)),
                    EndElement(name))
        if text.startswith(">", self._pos):
            self._pos += 1
            self._open_tags.append(name)
            return (StartElement(name, tuple(attributes), tuple(decls)),)
        raise self._error("malformed start tag")

    # -- main loop ------------------------------------------------------------

    def __iter__(self) -> Iterator[Event]:
        return self._parse()

    def _parse(self) -> Iterator[Event]:
        open_tags = self._open_tags
        text = self._text

        yield StartDocument(self._base_uri)

        # Optional XML declaration.
        self._skip_ws()
        self._skip_xml_decl()

        n = len(text)
        while self._pos < n:
            pos = self._pos
            if text[pos] != "<":
                # character data
                lt = text.find("<", pos)
                if lt < 0:
                    lt = n
                raw = text[pos:lt]
                self._advance_lines(pos, lt)
                self._pos = lt
                if open_tags:
                    if "]]>" in raw:
                        raise self._error("']]>' not allowed in character data")
                    yield Text(self._resolve_entities(raw, in_attribute=False))
                elif raw.strip():
                    raise self._error("character data outside the root element")
                continue

            # a markup construct
            if text.startswith("<!--", pos):
                yield self._handle_comment(pos)
                continue
            if text.startswith("<![CDATA[", pos):
                yield self._handle_cdata(pos)
                continue
            if text.startswith("<?", pos):
                yield self._handle_pi(pos)
                continue
            if text.startswith("<!DOCTYPE", pos):
                self._handle_doctype(pos)
                continue
            if text.startswith("</", pos):
                yield self._handle_end_tag(pos)
                continue
            yield from self._handle_start_tag(pos)

        if open_tags:
            raise self._error(f"unclosed element <{open_tags[-1]}>")
        if not self._saw_root:
            raise self._error("document has no root element")
        yield EndDocument()


def parse_events(text: str, base_uri: str = "", *, fast: bool = True) -> Iterator[Event]:
    """Parse ``text`` lazily into a stream of events.

    ``fast`` selects the regex-chunked scanner (the default); pass
    ``fast=False`` to force the character-level reference parser.  Both
    produce identical event streams and identical errors — the scanner
    falls back to the reference logic construct-by-construct for inputs
    its bulk regexes decline.
    """
    if fast:
        from repro.xmlio.scanner import FastXMLScanner

        return iter(FastXMLScanner(text, base_uri))
    return iter(XMLPullParser(text, base_uri))
