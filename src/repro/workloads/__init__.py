"""Workload generators for the experiment suite.

Substitutes for data the paper used but we cannot have:

- :mod:`repro.workloads.xmark` — an XMark-like auction-site document
  generator (the standard scaling workload of the era);
- :mod:`repro.workloads.ebxml` — trading-partner configuration
  documents with the element vocabulary of the tutorial's "fraction of
  a real customer XQuery", plus that query itself (trimmed to the
  features our subset supports, shape preserved);
- :mod:`repro.workloads.synthetic` — parametric deep/wide/recursive
  trees for join selectivity sweeps;
- :mod:`repro.workloads.messages` — small-message streams for the
  broker scenario.

All generators are deterministic given a seed.
"""

from repro.workloads.xmark import generate_xmark
from repro.workloads.ebxml import EBXML_QUERY, generate_ebxml
from repro.workloads.synthetic import deep_document, nested_sections, random_tree, wide_document
from repro.workloads.messages import generate_messages

__all__ = [
    "generate_xmark",
    "generate_ebxml",
    "EBXML_QUERY",
    "deep_document",
    "wide_document",
    "nested_sections",
    "random_tree",
    "generate_messages",
]
