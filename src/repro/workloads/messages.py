"""Small-message streams for the broker scenario.

Order/quote/invoice messages of a few hundred bytes each — the
"simple path expressions, single input message, small data sets"
profile of the tutorial's XML-message-broker use case.
"""

from __future__ import annotations

import random
from typing import Iterator

_KINDS = ("order", "quote", "invoice", "shipnotice")
_SYMBOLS = ("ACME", "GLOBEX", "INITECH", "UMBRELLA", "WAYNE", "STARK")


def generate_messages(count: int, seed: int = 3) -> Iterator[str]:
    """Yield ``count`` small XML messages, deterministic per seed."""
    rng = random.Random(seed)
    for i in range(count):
        kind = rng.choice(_KINDS)
        if kind == "order":
            lines = "".join(
                f'<line sku="sku{rng.randint(1, 999)}"><qty>{rng.randint(1, 9)}</qty>'
                f"<price>{round(rng.uniform(1, 250), 2)}</price></line>"
                for _ in range(rng.randint(1, 5)))
            yield (f'<order id="{i}"><customer>cust{rng.randint(1, 50)}</customer>'
                   f"<lines>{lines}</lines><total/></order>")
        elif kind == "quote":
            yield (f'<quote id="{i}"><symbol>{rng.choice(_SYMBOLS)}</symbol>'
                   f"<bid>{round(rng.uniform(10, 500), 2)}</bid>"
                   f"<ask>{round(rng.uniform(10, 500), 2)}</ask></quote>")
        elif kind == "invoice":
            yield (f'<invoice id="{i}"><order-ref>{rng.randint(0, max(i, 1))}</order-ref>'
                   f"<amount>{round(rng.uniform(5, 2000), 2)}</amount>"
                   f"<due>2004-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}</due>"
                   f"</invoice>")
        else:
            yield (f'<shipnotice id="{i}"><carrier>carrier{rng.randint(1, 5)}</carrier>'
                   f"<tracking>TRK{rng.randint(100000, 999999)}</tracking></shipnotice>")
