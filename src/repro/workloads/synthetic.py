"""Parametric synthetic trees for selectivity/scaling sweeps."""

from __future__ import annotations

import random
from typing import Sequence


def deep_document(depth: int, tag: str = "n", leaf_text: str = "x") -> str:
    """A single chain of ``depth`` nested elements."""
    return f"<{tag}>" * depth + leaf_text + f"</{tag}>" * depth


def wide_document(fanout: int, tag: str = "item", root: str = "root") -> str:
    """One root with ``fanout`` leaf children."""
    body = "".join(f"<{tag}>{i}</{tag}>" for i in range(fanout))
    return f"<{root}>{body}</{root}>"


def nested_sections(depth: int, fanout: int) -> str:
    """Recursive <section> nesting with <title>/<para> leaves.

    Total elements ≈ fanout^depth; useful for //section//title style
    joins where matches nest.
    """
    def section(d: int) -> str:
        title = f"<title>t{d}</title>"
        if d == 0:
            return f"<section>{title}<para>text</para></section>"
        children = "".join(section(d - 1) for _ in range(fanout))
        return f"<section>{title}{children}</section>"
    return f"<doc>{section(depth)}</doc>"


def random_tree(n_nodes: int, tags: Sequence[str] = ("a", "b", "c", "d"),
                seed: int = 11, max_fanout: int = 5,
                max_depth: int = 60) -> str:
    """A random tree with ``n_nodes`` elements over the given tag set.

    Tags repeat along root-to-leaf paths, so ancestor–descendant joins
    see nesting — the hard case for order/distinct reasoning.
    ``max_depth`` bounds nesting so large trees stay stack-safe.
    """
    rng = random.Random(seed)
    counter = [0]

    def build(depth: int) -> str:
        counter[0] += 1
        tag = rng.choice(tags)
        if counter[0] >= n_nodes or depth >= max_depth:
            return f"<{tag}>leaf</{tag}>"
        children = []
        for _ in range(rng.randint(1, max_fanout)):
            if counter[0] >= n_nodes:
                break
            children.append(build(depth + 1))
        if not children:
            return f"<{tag}>leaf</{tag}>"
        return f"<{tag}>{''.join(children)}</{tag}>"

    body = []
    while counter[0] < n_nodes:
        body.append(build(0))
    return "<root>" + "".join(body) + "</root>"
