"""An XMark-style query suite, adapted to this engine's dialect.

XMark's twenty queries were *the* workload for XML engines of the
tutorial's era.  This module carries a representative dozen, rewritten
against our generator's vocabulary and the engine's XQuery subset, each
tagged with the capability it stresses (exact path lookup, joins,
aggregation, ordering, construction, quantifiers, ...).

Use :data:`QUERIES` programmatically, or ``run_suite`` for a quick
correctness/consistency sweep.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class XMarkQuery:
    """One suite entry."""

    key: str
    stresses: str
    text: str


QUERIES: dict[str, XMarkQuery] = {q.key: q for q in [
    XMarkQuery(
        "q01-exact-lookup", "exact path match, positional predicate",
        """for $b in /site/open_auctions/open_auction
           where $b/itemref/@item = 'item0'
           return $b/initial/text()"""),
    XMarkQuery(
        "q02-ordered-access", "positional access inside groups",
        """for $b in /site/open_auctions/open_auction
           return <increase>{$b/bidder[1]/increase/text()}</increase>"""),
    XMarkQuery(
        "q03-filtered-positional", "positions + arithmetic comparison",
        """for $b in /site/open_auctions/open_auction
           where count($b/bidder) > 2
             and xs:double($b/bidder[1]/increase)
                 * 2 <= xs:double($b/bidder[last()]/increase) * 10
           return <increase first="{$b/bidder[1]/increase}"
                            last="{$b/bidder[last()]/increase}"/>"""),
    XMarkQuery(
        "q04-quantifier", "existential quantification over history",
        """for $b in /site/open_auctions/open_auction
           where some $i in $b/bidder/increase
                 satisfies xs:double($i) > 20
           return <hot>{$b/itemref/@item}</hot>"""),
    XMarkQuery(
        "q05-aggregate-count", "count over a selection",
        """count(for $i in /site/closed_auctions/closed_auction
                 where xs:double($i/price) >= 40 return $i/price)"""),
    XMarkQuery(
        "q06-descendant-count", "descendant axis cardinality",
        """for $b in /site/regions return count($b//item)"""),
    XMarkQuery(
        "q07-multi-count", "several descendant counts in one query",
        """count(/site//description) + count(/site//annotation)
           + count(/site//emailaddress)"""),
    XMarkQuery(
        "q08-value-join", "value join buyers × people ('who bought what')",
        """for $p in /site/people/person
           let $a := for $t in /site/closed_auctions/closed_auction
                     where $t/buyer/@person = $p/@id
                     return $t
           return <item person="{$p/name/text()}">{count($a)}</item>"""),
    XMarkQuery(
        "q09-join-triple", "three-way join people × closed × items",
        """for $p in /site/people/person
           let $a := for $t in /site/closed_auctions/closed_auction
                     where $p/@id = $t/buyer/@person
                     return let $n := for $t2 in /site/regions//item
                                      where $t/itemref/@item = $t2/@id
                                      return $t2
                            return <item>{$n/name/text()}</item>
           return <person name="{$p/name/text()}">{$a}</person>"""),
    XMarkQuery(
        "q10-grouping", "grouping by category via distinct-values",
        """for $c in distinct-values(/site/people/person/profile/interest/@category)
           let $members := for $p in /site/people/person
                           where $p/profile/interest/@category = $c
                           return $p
           order by xs:string($c)
           return <category id="{$c}" members="{count($members)}"/>"""),
    XMarkQuery(
        "q15-deep-path", "a long fully-specified child chain",
        """for $a in /site/closed_auctions/closed_auction/annotation
                     /description/text
           return <text>{$a/text()}</text>"""),
    XMarkQuery(
        "q17-missing-data", "absence predicates (empty())",
        """for $p in /site/people/person
           where empty($p/homepage)
           return <person name="{$p/name/text()}"/>"""),
    XMarkQuery(
        "q18-function", "user function application",
        """declare function local:convert($v as xs:double) as xs:double
           { 2.20371e0 * $v };
           for $i in /site/open_auctions/open_auction
           return local:convert(xs:double($i/current))"""),
    XMarkQuery(
        "q20-partition", "multi-branch conditional aggregation",
        """<result>
             <preferred>{count(/site/people/person/profile[xs:double(@income) >= 100000])}</preferred>
             <standard>{count(/site/people/person/profile[
                 xs:double(@income) < 100000 and xs:double(@income) >= 30000])}</standard>
             <challenge>{count(/site/people/person/profile[xs:double(@income) < 30000])}</challenge>
           </result>"""),
]}


def run_suite(engine, document, keys: list[str] | None = None) -> dict[str, str]:
    """Compile and run (a subset of) the suite; returns key → serialized."""
    out: dict[str, str] = {}
    for key in keys or list(QUERIES):
        compiled = engine.compile(QUERIES[key].text)
        out[key] = compiled.execute(context_item=document).serialize()
    return out
