"""An XMark-like auction-site document generator.

Follows the entity schema of the XMark benchmark (site → regions /
people / open_auctions / closed_auctions) with the element names its
queries use, so path shapes like ``/site/people/person/name`` and
``//item[location]//keyword`` behave like the original.  ``scale=1.0``
yields roughly 1 MB of XML; size grows linearly.
"""

from __future__ import annotations

import random

_FIRST = ("Alice", "Bob", "Carol", "Dan", "Erin", "Frank", "Grace", "Heidi",
          "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert",
          "Sybil", "Trent", "Victor", "Wendy", "Yves")
_LAST = ("Smith", "Jones", "Miller", "Davis", "Garcia", "Chen", "Kumar",
         "Moore", "Taylor", "Lopez", "Khan", "Silva", "Sato", "Nguyen")
_CITIES = ("Paris", "Berlin", "Madrid", "Rome", "Vienna", "Prague", "Oslo",
           "Dublin", "Lisbon", "Athens")
_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
_WORDS = ("great", "vintage", "rare", "mint", "signed", "classic", "unique",
          "antique", "restored", "original", "boxed", "limited", "edition",
          "collector", "pristine", "museum", "quality", "certified")


def _words(rng: random.Random, n: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n))


def generate_xmark(scale: float = 0.1, seed: int = 42) -> str:
    """Generate an auction document; ``scale=1.0`` ≈ 1 MB."""
    rng = random.Random(seed)
    n_people = max(2, int(250 * scale))
    n_items = max(2, int(200 * scale))
    n_open = max(1, int(120 * scale))
    n_closed = max(1, int(80 * scale))

    out: list[str] = ['<site>']

    # regions/items
    out.append("<regions>")
    per_region: dict[str, list[int]] = {r: [] for r in _REGIONS}
    for i in range(n_items):
        per_region[rng.choice(_REGIONS)].append(i)
    for region in _REGIONS:
        out.append(f"<{region}>")
        for i in per_region[region]:
            quantity = rng.randint(1, 5)
            out.append(
                f'<item id="item{i}"><location>{rng.choice(_CITIES)}</location>'
                f"<quantity>{quantity}</quantity>"
                f"<name>{_words(rng, 2)}</name>"
                f"<payment>Creditcard</payment>"
                f"<description><text>{_words(rng, rng.randint(5, 30))}</text></description>"
                f"<keyword>{rng.choice(_WORDS)}</keyword>"
                f"</item>")
        out.append(f"</{region}>")
    out.append("</regions>")

    # people
    out.append("<people>")
    for p in range(n_people):
        first = rng.choice(_FIRST)
        last = rng.choice(_LAST)
        income = round(rng.uniform(9000, 120000), 2)
        out.append(
            f'<person id="person{p}"><name>{first} {last}</name>'
            f"<emailaddress>mailto:{first.lower()}.{last.lower()}{p}@example.com</emailaddress>"
            f"<address><street>{rng.randint(1, 99)} {rng.choice(_LAST)} St</street>"
            f"<city>{rng.choice(_CITIES)}</city>"
            f"<country>United States</country></address>"
            f'<profile income="{income}">'
            f"<interest category=\"category{rng.randint(0, 9)}\"/>"
            f"<education>{rng.choice(('High School', 'College', 'Graduate School'))}</education>"
            f"<age>{rng.randint(18, 80)}</age></profile>"
            + "".join(f'<watches><watch open_auction="open_auction{rng.randrange(max(n_open, 1))}"/></watches>'
                      for _ in range(rng.randint(0, 2)))
            + "</person>")
    out.append("</people>")

    # open auctions with bidder history
    out.append("<open_auctions>")
    for a in range(n_open):
        initial = round(rng.uniform(1, 100), 2)
        bids = []
        current = initial
        for _b in range(rng.randint(0, 6)):
            current = round(current + rng.uniform(1, 25), 2)
            bids.append(
                f'<bidder><date>{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/2003</date>'
                f'<personref person="person{rng.randrange(n_people)}"/>'
                f"<increase>{round(rng.uniform(1, 25), 2)}</increase></bidder>")
        out.append(
            f'<open_auction id="open_auction{a}">'
            f"<initial>{initial}</initial>"
            + "".join(bids) +
            f"<current>{current}</current>"
            f'<itemref item="item{rng.randrange(n_items)}"/>'
            f'<seller person="person{rng.randrange(n_people)}"/>'
            f"<annotation><description><text>{_words(rng, rng.randint(3, 15))}</text>"
            f"</description></annotation>"
            f"<quantity>1</quantity>"
            f"<type>Regular</type>"
            f"<interval><start>01/01/2003</start><end>31/12/2003</end></interval>"
            f"</open_auction>")
    out.append("</open_auctions>")

    # closed auctions
    out.append("<closed_auctions>")
    for a in range(n_closed):
        out.append(
            f"<closed_auction>"
            f'<seller person="person{rng.randrange(n_people)}"/>'
            f'<buyer person="person{rng.randrange(n_people)}"/>'
            f'<itemref item="item{rng.randrange(n_items)}"/>'
            f"<price>{round(rng.uniform(5, 500), 2)}</price>"
            f"<date>{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/2003</date>"
            f"<quantity>1</quantity>"
            f"<type>Regular</type>"
            f"<annotation><description><text>{_words(rng, rng.randint(3, 12))}</text>"
            f"</description></annotation>"
            f"</closed_auction>")
    out.append("</closed_auctions>")

    out.append("</site>")
    return "".join(out)
