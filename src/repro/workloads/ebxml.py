"""Trading-partner configuration documents and the customer query.

The tutorial devotes a dozen slides to "a fraction of a real customer
XQuery": a WebLogic-Collaborate configuration transformation over
``wlc/trading-partner`` documents.  This module generates documents
with exactly that vocabulary (trading partners with certificates,
delivery channels, document exchanges, transports, collaboration
agreements, conversation definitions), plus ``EBXML_QUERY`` — a
faithful, runnable rendition of the transformation (trimmed to the
features our engine subset supports, with every structural feature of
the original preserved: nested FLWORs, attribute joins, conditional
attributes, element constructors inside loops).
"""

from __future__ import annotations

import random

_PROTOCOLS = ("http", "https")
_BUSINESS = ("ebXML", "RosettaNet")


def generate_ebxml(n_partners: int = 10, seed: int = 7) -> str:
    """A wlc configuration document with ``n_partners`` trading partners."""
    rng = random.Random(seed)
    out: list[str] = ["<wlc>"]
    channel_names: list[str] = []
    partner_names: list[str] = []

    for p in range(n_partners):
        name = f"partner{p}"
        partner_names.append(name)
        ptype = rng.choice(("LOCAL", "REMOTE"))
        de_name = f"exchange{p}"
        tp_name = f"transport{p}"
        dc_name = f"channel{p}"
        channel_names.append(dc_name)
        protocol = rng.choice(_PROTOCOLS)
        business = rng.choice(_BUSINESS)
        ttl = rng.choice((0, 30000, 60000))
        retries = rng.choice((0, 2, 5))
        retry_interval = rng.choice((0, 5000, 15000))
        binding_attrs = (
            f'signature-certificate-name="sig-{name}" '
            f'delivery-semantics="OnceAndOnlyOnce" '
            + (f'ttl="{ttl}" ' if ttl else "")
            + (f'retries="{retries}" ' if retries else "")
            + (f'retry-interval="{retry_interval}" ' if retry_interval else ""))
        binding = (f"<EBXML-binding {binding_attrs}/>" if business == "ebXML"
                   else f"<RosettaNet-binding {binding_attrs}"
                        f'encryption-certificate-name="enc-{name}" '
                        f'cipher-algorithm="RC5" '
                        f'encryption-level="{rng.randint(0, 2)}"/>')
        certs = f'<client-certificate name="client-{name}"/>' if rng.random() < 0.8 else ""
        if ptype == "REMOTE":
            certs += f'<server-certificate name="server-{name}"/>'
        certs += f'<signature-certificate name="sig-{name}"/>'
        if rng.random() < 0.5:
            certs += f'<encryption-certificate name="enc-{name}"/>'
        out.append(
            f'<trading-partner name="{name}" type="{ptype}" '
            f'description="Partner {p}" notes="n{p}" email="{name}@example.com" '
            f'phone="555-01{p:02d}" fax="555-02{p:02d}" user-name="user{p}" '
            f'extended-property-set-name="eps{p % 3}">'
            f'<party-identifier business-id="BID-{p:05d}"/>'
            f"<address>{p} Commerce Way</address>"
            f"{certs}"
            f'<delivery-channel name="{dc_name}" '
            f'document-exchange-name="{de_name}" transport-name="{tp_name}" '
            f'nonrepudiation-of-origin="{str(rng.random() < 0.5).lower()}" '
            f'nonrepudiation-of-receipt="{str(rng.random() < 0.5).lower()}"/>'
            f'<document-exchange name="{de_name}" '
            f'business-protocol-name="{business}" protocol-version="1.0">'
            f"{binding}</document-exchange>"
            f'<transport name="{tp_name}" protocol="{protocol}" '
            f'protocol-version="1.1">'
            f'<endpoint uri="{protocol}://partner{p}.example.com/msg"/>'
            f"</transport>"
            f"</trading-partner>")

    # extended property sets referenced by partners
    for e in range(3):
        out.append(f'<extended-property-set name="eps{e}">'
                   f"<property>value{e}</property></extended-property-set>")

    # collaboration agreements pairing partners
    for c in range(max(1, n_partners // 2)):
        p1 = rng.randrange(n_partners)
        p2 = rng.randrange(n_partners)
        out.append(
            f'<collaboration-agreement name="ca{c}">'
            f'<party trading-partner-name="{partner_names[p1]}" '
            f'delivery-channel-name="{channel_names[p1]}"/>'
            f'<party trading-partner-name="{partner_names[p2]}" '
            f'delivery-channel-name="{channel_names[p2]}"/>'
            f"</collaboration-agreement>")

    # conversation definitions with roles
    for c in range(max(1, n_partners // 3)):
        business = rng.choice(_BUSINESS)
        out.append(
            f'<conversation-definition name="cd{c}" '
            f'business-protocol-name="{business}">'
            f'<role name="role{c}a" wlpi-template="flow{c}a" '
            f'description="initiator" note="n"/>'
            f'<role name="role{c}b" wlpi-template="" description="responder" note="n"/>'
            f"</conversation-definition>")

    out.append("</wlc>")
    return "".join(out)


#: The customer transformation, reconstructed.  Structure preserved
#: from the tutorial: outer FLWOR over trading partners; nested loops
#: over certificates; the three-way join of delivery-channel ×
#: document-exchange × transport on attribute equality; conditional
#: attributes computed from ttl/retries/retry-interval; the
#: collaboration-agreement five-way join producing <authentication>;
#: and the conversation-definition service list.
EBXML_QUERY = """
let $wlc := $input
let $wfPath := 'test'
let $tp-list :=
  for $tp in $wlc/wlc/trading-partner
  return
    <trading-partner
      name="{$tp/@name}"
      business-id="{$tp/party-identifier/@business-id}"
      description="{$tp/@description}"
      type="{$tp/@type}"
      email="{$tp/@email}"
      username="{$tp/@user-name}">
    { for $tp-ad in $tp/address return $tp-ad }
    { for $eps in $wlc/wlc/extended-property-set
      where $tp/@extended-property-set-name eq $eps/@name
      return $eps }
    { for $client-cert in $tp/client-certificate
      return <client-certificate name="{$client-cert/@name}"/> }
    { for $server-cert in $tp/server-certificate
      return <server-certificate name="{$server-cert/@name}"/> }
    { for $sig-cert in $tp/signature-certificate
      return <signature-certificate name="{$sig-cert/@name}"/> }
    { for $enc-cert in $tp/encryption-certificate
      return <encryption-certificate name="{$enc-cert/@name}"/> }
    { for $eb-dc in $tp/delivery-channel
      for $eb-de in $tp/document-exchange
      for $eb-tp in $tp/transport
      where $eb-dc/@document-exchange-name eq $eb-de/@name
        and $eb-dc/@transport-name eq $eb-tp/@name
        and $eb-de/@business-protocol-name eq 'ebXML'
      return
        <ebxml-binding
          name="{$eb-dc/@name}"
          business-protocol-name="{$eb-de/@business-protocol-name}"
          business-protocol-version="{$eb-de/@protocol-version}"
          is-signature-required="{$eb-dc/@nonrepudiation-of-origin}"
          is-receipt-signature-required="{$eb-dc/@nonrepudiation-of-receipt}"
          signature-certificate-name="{$eb-de/EBXML-binding/@signature-certificate-name}"
          delivery-semantics="{$eb-de/EBXML-binding/@delivery-semantics}">
        { if (fn:empty($eb-de/EBXML-binding/@ttl))
          then ()
          else attribute persist-duration
            { fn:concat(xs:string($eb-de/EBXML-binding/@ttl div 1000), ' seconds') } }
        { if (fn:empty($eb-de/EBXML-binding/@retries))
          then ()
          else $eb-de/EBXML-binding/@retries }
        { if (fn:empty($eb-de/EBXML-binding/@retry-interval))
          then ()
          else attribute retry-interval
            { fn:concat(xs:string($eb-de/EBXML-binding/@retry-interval div 1000), ' seconds') } }
          <transport
            protocol="{$eb-tp/@protocol}"
            protocol-version="{$eb-tp/@protocol-version}"
            endpoint="{$eb-tp/endpoint[1]/@uri}">
          { for $ca in $wlc/wlc/collaboration-agreement
            for $p1 in $ca/party[1]
            for $p2 in $ca/party[2]
            for $tp1 in $wlc/wlc/trading-partner
            for $tp2 in $wlc/wlc/trading-partner
            where $p1/@delivery-channel-name eq $eb-dc/@name
              and $tp1/@name eq $p1/@trading-partner-name
              and $tp2/@name eq $p2/@trading-partner-name
            return
              if ($p1/@trading-partner-name = $tp/@name)
              then
                <authentication
                  client-partner-name="{$tp2/@name}"
                  client-certificate-name="{$tp2/client-certificate/@name}"
                  client-authentication="{
                    if (fn:empty($tp2/client-certificate))
                    then 'NONE' else 'SSL_CERT_MUTUAL' }"
                  server-certificate-name="{
                    if ($tp1/@type = 'REMOTE')
                    then xs:string($tp1/server-certificate/@name) else '' }"
                  server-authentication="{
                    if ($eb-tp/@protocol = 'http')
                    then 'NONE' else 'SSL_CERT' }"/>
              else
                <authentication
                  client-partner-name="{$tp1/@name}"
                  client-certificate-name="{$tp1/client-certificate/@name}"
                  client-authentication="{
                    if (fn:empty($tp1/client-certificate))
                    then 'NONE' else 'SSL_CERT_MUTUAL' }"
                  server-certificate-name="{
                    if ($tp2/@type = 'REMOTE')
                    then xs:string($tp2/server-certificate/@name) else '' }"
                  server-authentication="{
                    if ($eb-tp/@protocol = 'http')
                    then 'NONE' else 'SSL_CERT' }"/> }
          </transport>
        </ebxml-binding> }
    </trading-partner>
let $sv :=
  for $cd in $wlc/wlc/conversation-definition
  for $role in $cd/role
  where fn:not(fn:empty($role/@wlpi-template) or $role/@wlpi-template = '')
    and ($cd/@business-protocol-name = 'ebXML'
         or $cd/@business-protocol-name = 'RosettaNet')
  return
    <servicePair>
      <service
        name="{fn:concat($wfPath, $role/@wlpi-template, '.jpd')}"
        description="{$role/@description}"
        note="{$role/@note}"
        service-type="WORKFLOW"
        business-protocol="{fn:upper-case($cd/@business-protocol-name)}"/>
    </servicePair>
return <config>{$tp-list}{$sv}</config>
"""
