"""Index-backed access-path evaluation.

The runtime half of the planner (:mod:`repro.compiler.planner`): given
a stored document's posting lists, evaluate a root-anchored step chain
with stack-tree structural joins (element-index scan), or answer a
value-equality predicate with a point lookup plus upward chain
verification (value-index lookup).  Both produce distinct elements in
document order — exactly what the ``DDO(PathExpr(...))`` they replace
would yield.
"""

from __future__ import annotations

from typing import Optional

from repro.joins.stacktree import stack_tree_anc_desc
from repro.storage.indexes import ElementIndex, Posting, ValueIndex
from repro.xdm.nodes import DocumentNode, ElementNode, Node


def element_chain_postings(eindex: ElementIndex,
                           steps: tuple[tuple[str, str], ...],
                           counters: Optional[dict[str, int]] = None,
                           ) -> list[Posting]:
    """Evaluate a ``(edge, name)`` chain rooted at the document node.

    Each edge is one stack-tree merge over the two posting lists —
    O(|A| + |D| + |out|) per step, never touching unrelated nodes.
    Returns distinct output-step postings in document order.
    """
    current: Optional[list[Posting]] = None
    for edge, name in steps:
        plist = eindex.postings(name)
        if counters is not None:
            counters["postings_scanned"] = \
                counters.get("postings_scanned", 0) + len(plist)
        if current is None:
            # first edge hangs off the document node itself
            if edge == "child":
                current = [p for p in plist if p.level == 1]
            else:
                current = plist
        else:
            current = stack_tree_anc_desc(current, plist,
                                          parent_child=(edge == "child"))
        if not current:
            return []
    return list(current)


def _chain_admits(node: ElementNode, steps: tuple[tuple[str, str], ...],
                  doc: DocumentNode) -> bool:
    """True when ``node`` (which matched the last step's name) is
    reachable from ``doc`` along the chain's edges."""

    def admits(n: Node, idx: int) -> bool:
        edge = steps[idx][0]
        if idx == 0:
            return n.parent is doc if edge == "child" else True
        prev_name = steps[idx - 1][1]
        if edge == "child":
            parent = n.parent
            return (isinstance(parent, ElementNode)
                    and parent.name.local == prev_name
                    and admits(parent, idx - 1))
        ancestor = n.parent
        while isinstance(ancestor, ElementNode):
            if ancestor.name.local == prev_name and admits(ancestor, idx - 1):
                return True
            ancestor = ancestor.parent
        return False

    return admits(node, len(steps) - 1)


def value_lookup_elements(eindex: ElementIndex, vindex: ValueIndex,
                          doc: DocumentNode,
                          steps: tuple[tuple[str, str], ...],
                          pred_kind: str, pred_name: str, probe: str,
                          counters: Optional[dict[str, int]] = None,
                          ) -> list[ElementNode]:
    """Output-step elements owning a ``pred_name = probe`` match.

    Probes the value index (whitespace-normalized keys — a superset of
    exact equality; the caller re-verifies with the original predicate),
    maps each hit to its owner element, and verifies the owner's
    ancestry against the chain.  Returns distinct owners in document
    order.
    """
    key = "@" + pred_name if pred_kind == "attribute" else pred_name
    matches = vindex.lookup(key, probe)
    if counters is not None:
        counters["value_probes"] = counters.get("value_probes", 0) + 1
        counters["postings_scanned"] = \
            counters.get("postings_scanned", 0) + len(matches)
    out_name = steps[-1][1]
    seen: set[int] = set()
    owners: list[ElementNode] = []
    for match in matches:
        owner = match.parent
        if not isinstance(owner, ElementNode) or owner.name.local != out_name:
            continue
        if id(owner) in seen:
            continue
        if not _chain_admits(owner, steps, doc):
            continue
        seen.add(id(owner))
        owners.append(owner)
    owners.sort(key=lambda n: eindex.label_of(n).pre)
    return owners
