"""Twig patterns and the plan-level entry points.

A twig pattern is a small tree of name tests connected by child (``/``)
or descendant (``//``) edges — the common core of path queries that
structural-join algorithms accept::

    book//author/last        TwigPattern.chain(("book", "//"), ("author", "/"), ...)
    book[.//year]//title     a branching twig

``evaluate_pattern`` runs one pattern through any of the competing
physical plans — navigation, binary structural joins, holistic
TwigStack, a mixed binary/holistic plan, or ``"auto"`` (the
pattern-level cost model in :mod:`repro.compiler.planner` picks) —
and returns the matches of the *output node*, so E6 and the
differential harness compare identical logical work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Optional

from repro.storage.indexes import ElementIndex, Posting
from repro.joins.stacktree import stack_tree_desc

EdgeKind = Literal["child", "descendant"]

#: engine-facing strategy names → internal algorithm names ("holistic"
#: is the knob vocabulary for the TwigStack plan)
ALGORITHM_ALIASES = {
    "holistic": "twigstack",
    "twigstack": "twigstack",
    "binary": "binary",
    "navigation": "navigation",
    "mixed": "mixed",
    "auto": "auto",
}


@dataclass
class TwigNode:
    """One pattern node: a tag name plus outgoing edges."""

    name: str
    children: list["TwigEdge"] = field(default_factory=list)
    #: marks the node whose matches the query returns
    is_output: bool = False

    def add(self, child: "TwigNode", kind: EdgeKind = "descendant") -> "TwigNode":
        self.children.append(TwigEdge(kind, child))
        return child

    def __repr__(self) -> str:
        return f"TwigNode({self.name}{'*' if self.is_output else ''})"


@dataclass
class TwigEdge:
    kind: EdgeKind
    child: TwigNode


class TwigPattern:
    """A rooted twig pattern."""

    def __init__(self, root: TwigNode):
        self.root = root
        names = [n.name for n in self.nodes()]
        if len(names) != len(set(names)):
            # bindings are keyed by name throughout the join plans — the
            # standard simplification in this literature's experiments
            raise ValueError("twig pattern nodes must have distinct names")
        outputs = [n for n in self.nodes() if n.is_output]
        if not outputs:
            # default: the last leaf in definition order
            leaves = [n for n in self.nodes() if not n.children]
            leaves[-1].is_output = True
            outputs = [leaves[-1]]
        if len(outputs) > 1:
            raise ValueError("twig pattern must have exactly one output node")
        self.output = outputs[0]

    def nodes(self) -> Iterator[TwigNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for edge in node.children:
                stack.append(edge.child)

    def leaves(self) -> list[TwigNode]:
        return [n for n in self.nodes() if not n.children]

    def edges(self) -> list[tuple[str, EdgeKind, str]]:
        """All pattern edges as ``(parent name, kind, child name)``."""
        out: list[tuple[str, EdgeKind, str]] = []
        for node in self.nodes():
            for edge in node.children:
                out.append((node.name, edge.kind, edge.child.name))
        return out

    def to_spec(self) -> tuple:
        """An immutable, hashable form of the pattern: nested
        ``(name, is_output, ((kind, child_spec), ...))`` tuples — what
        the planner embeds in :class:`repro.xquery.ast.TwigJoin` nodes
        (AST nodes must not share mutable pattern state)."""
        def spec(node: TwigNode) -> tuple:
            return (node.name, node.is_output,
                    tuple((e.kind, spec(e.child)) for e in node.children))
        return spec(self.root)

    @classmethod
    def from_spec(cls, spec: tuple) -> "TwigPattern":
        """Rebuild a pattern from :meth:`to_spec` output."""
        def build(part: tuple) -> TwigNode:
            name, is_output, children = part
            node = TwigNode(name, is_output=is_output)
            for kind, child_spec in children:
                node.add(build(child_spec), kind)
            return node
        return cls(build(spec))

    @classmethod
    def chain(cls, *steps: tuple[str, EdgeKind] | str) -> "TwigPattern":
        """A linear path pattern.

        ``TwigPattern.chain("a", ("b", "descendant"), ("c", "child"))``
        is ``a//b/c`` with ``c`` as output.
        """
        normalized: list[tuple[str, EdgeKind]] = []
        for step in steps:
            if isinstance(step, str):
                normalized.append((step, "descendant"))
            else:
                normalized.append(step)
        root = TwigNode(normalized[0][0])
        current = root
        for name, kind in normalized[1:]:
            current = current.add(TwigNode(name), kind)
        current.is_output = True
        return cls(root)

    def __repr__(self) -> str:
        def fmt(node: TwigNode) -> str:
            if not node.children:
                return node.name + ("*" if node.is_output else "")
            parts = []
            for edge in node.children:
                sep = "/" if edge.kind == "child" else "//"
                parts.append(sep + fmt(edge.child))
            label = node.name + ("*" if node.is_output else "")
            if len(parts) == 1:
                return label + parts[0]
            return label + "[" + "][".join(parts) + "]"
        return f"TwigPattern({fmt(self.root)})"


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


def evaluate_pattern(index: ElementIndex, pattern: TwigPattern,
                     algorithm: str = "twigstack",
                     profiler=None, cancellation=None,
                     counters: Optional[dict[str, int]] = None,
                     stats=None,
                     holistic_branches=()) -> list[Posting]:
    """Matches of the pattern's output node, distinct, in document order.

    ``algorithm`` is one of ``twigstack`` (alias ``holistic``),
    ``binary``, ``navigation``, ``mixed``, or ``auto``.  ``auto`` asks
    the pattern-level cost model (:func:`repro.compiler.planner.
    choose_twig_strategy`) to pick from the document's ingest
    statistics — pass ``stats`` (a :class:`repro.storage.stats.
    DocumentStats`); without statistics ``auto`` degrades to the
    scan-optimal holistic plan.  ``mixed`` runs binary semi-joins down
    the output chain with side branches pre-filtered; branches named in
    ``holistic_branches`` are filtered holistically (TwigStack on the
    sub-twig) instead of by cascaded binary semi-joins.

    With a :class:`repro.observability.Profiler` attached, records a
    ``join.<algorithm>`` operator under the *resolved* algorithm name
    (items = output postings, wall time, plus algorithm counters:
    ``elements_scanned`` for all plans,
    ``stack_pushes``/``path_solutions``/``output_matches`` and
    per-edge ``edge.<parent>><child>.pairs`` where they apply).
    ``elements_scanned`` is the E6 cost model the differential harness
    ranks: holistic ≤ binary ≤ navigation.  An explicit ``counters``
    dict collects the same metrics without a profiler (the compiled
    TwigJoin operator uses this).

    ``cancellation`` (an optional
    :class:`repro.runtime.cancellation.CancellationToken`) is polled
    inside every algorithm's scan loop, so a deadline interrupts a join
    mid-scan instead of after it.
    """
    try:
        algorithm = ALGORITHM_ALIASES[algorithm]
    except KeyError:
        raise ValueError(f"unknown algorithm {algorithm!r}") from None
    if algorithm == "auto":
        if stats is None:
            algorithm = "twigstack"
        else:
            from repro.compiler.planner import choose_twig_strategy

            choice = choose_twig_strategy(stats, pattern)
            algorithm = choice.algorithm
            holistic_branches = choice.holistic_branches
    if counters is None and profiler is not None:
        counters = {}
    if profiler is not None:
        from time import perf_counter

        t0 = perf_counter()
    if algorithm == "twigstack":
        from repro.joins.twigstack import twig_stack

        matches = twig_stack(index, pattern, counters=counters,
                             cancellation=cancellation)
        if counters is not None:
            _count_match_edges(pattern, matches, counters)
        result = _distinct_postings(m[pattern.output.name] for m in matches)
    elif algorithm == "binary":
        result = binary_join_plan(index, pattern, counters=counters,
                                  cancellation=cancellation)
    elif algorithm == "navigation":
        from repro.joins.navigation import navigate_pattern

        result = navigate_pattern(index, pattern, counters=counters,
                                  cancellation=cancellation)
    else:  # mixed
        result = mixed_join_plan(index, pattern, counters=counters,
                                 cancellation=cancellation,
                                 holistic_branches=holistic_branches)
    if profiler is not None:
        profiler.record(f"join.{algorithm}", items=len(result),
                        seconds=perf_counter() - t0, **counters)
    return result


def binary_join_plan(index: ElementIndex, pattern: TwigPattern,
                     counters: Optional[dict[str, int]] = None,
                     cancellation=None) -> list[Posting]:
    """Evaluate the twig as a sequence of binary structural joins.

    Each edge runs one stack-tree join; intermediate results are
    (bindings per pattern node) tuples — the representation whose
    possible blow-up motivated holistic twig joins.  ``counters``
    accumulates per-join ``elements_scanned``/``stack_pushes`` plus
    ``intermediate_rows`` (the blow-up the holistic join avoids).
    """
    # intermediate: list of dict name → Posting
    rows: list[dict[str, Posting]] = [
        {pattern.root.name: p} for p in index.postings(pattern.root.name)]

    def process(node: TwigNode, rows: list[dict[str, Posting]]) -> list[dict[str, Posting]]:
        for edge in node.children:
            child = edge.child
            # join current rows' bindings of `node` with child postings
            alist = _distinct_postings(row[node.name] for row in rows)
            pairs = list(stack_tree_desc(alist, index.postings(child.name),
                                         parent_child=(edge.kind == "child"),
                                         counters=counters,
                                         cancellation=cancellation))
            if counters is not None:
                key = f"edge.{node.name}>{child.name}.pairs"
                counters[key] = counters.get(key, 0) + len(pairs)
            # group descendants by ancestor pre
            by_anc: dict[int, list[Posting]] = {}
            for a, d in pairs:
                by_anc.setdefault(a.pre, []).append(d)
            new_rows: list[dict[str, Posting]] = []
            for row in rows:
                anchor = row[node.name]
                for d in by_anc.get(anchor.pre, ()):
                    new_row = dict(row)
                    new_row[child.name] = d
                    new_rows.append(new_row)
            if counters is not None:
                counters["intermediate_rows"] = \
                    counters.get("intermediate_rows", 0) + len(new_rows)
            rows = process(child, new_rows)
        return rows

    rows = process(pattern.root, rows)
    return _distinct_postings(row[pattern.output.name] for row in rows)


def mixed_join_plan(index: ElementIndex, pattern: TwigPattern,
                    counters: Optional[dict[str, int]] = None,
                    cancellation=None,
                    holistic_branches=()) -> list[Posting]:
    """Binary joins down the output chain, side branches pre-filtered.

    The root→output chain is evaluated as a cascade of stack-tree
    joins, but each chain node's posting list is first reduced to the
    elements satisfying its side-branch predicates — by bottom-up
    binary *semi*-joins (never materializing cross-branch row products,
    the binary plan's blow-up), or, for branches named in
    ``holistic_branches``, by a TwigStack run over just that sub-twig
    (the cost model picks holistic filtering for skewed branches where
    the coordinated pass skips most of the dense lists).
    """
    chain = _root_to_output(pattern)
    chain_names = {q.name for q, _ in chain}
    holistic = set(holistic_branches)

    def survivors(qnode: TwigNode) -> list[Posting]:
        """Postings of ``qnode`` that embed the sub-twig below it,
        via bottom-up binary semi-joins."""
        current = index.postings(qnode.name)
        for edge in qnode.children:
            current = _semi_join(current, survivors(edge.child),
                                 edge, qnode.name)
        return current

    def _semi_join(alist: list[Posting], dlist: list[Posting],
                   edge: TwigEdge, parent_name: str) -> list[Posting]:
        npairs = 0
        seen: set[int] = set()
        out: list[Posting] = []
        for a, _d in stack_tree_desc(alist, dlist,
                                     parent_child=(edge.kind == "child"),
                                     counters=counters,
                                     cancellation=cancellation):
            npairs += 1
            if a.pre not in seen:
                seen.add(a.pre)
                out.append(a)
        if counters is not None:
            key = f"edge.{parent_name}>{edge.child.name}.pairs"
            counters[key] = counters.get(key, 0) + npairs
        out.sort(key=lambda p: p.pre)
        return out

    def _holistic_filter(qnode: TwigNode, edge: TwigEdge,
                         current: list[Posting]) -> list[Posting]:
        """Reduce ``current`` to postings embedding one branch, by a
        TwigStack pass over the ``qnode[branch]`` sub-twig."""
        from repro.joins.twigstack import twig_stack

        root = TwigNode(qnode.name, is_output=True)
        root.add(_copy_subtree(edge.child), edge.kind)
        sub = TwigPattern(root)
        matches = twig_stack(index, sub, counters=counters,
                             cancellation=cancellation)
        if counters is not None:
            _count_match_edges(sub, matches, counters)
        allowed = {m[qnode.name].pre for m in matches}
        return [p for p in current if p.pre in allowed]

    filtered: list[list[Posting]] = []
    for qnode, _kind in chain:
        current = index.postings(qnode.name)
        for edge in qnode.children:
            if edge.child.name in chain_names:
                continue  # the chain itself is joined below
            if edge.child.name in holistic:
                current = _holistic_filter(qnode, edge, current)
            else:
                current = _semi_join(current, survivors(edge.child),
                                     edge, qnode.name)
        filtered.append(current)

    result = filtered[0]
    for i in range(1, len(chain)):
        _qnode, kind = chain[i]
        npairs = 0
        out: list[Posting] = []
        last_pre = -1
        for _a, d in stack_tree_desc(result, filtered[i],
                                     parent_child=(kind == "child"),
                                     counters=counters,
                                     cancellation=cancellation):
            npairs += 1
            if d.pre != last_pre:
                out.append(d)
                last_pre = d.pre
        if counters is not None:
            key = f"edge.{chain[i - 1][0].name}>{chain[i][0].name}.pairs"
            counters[key] = counters.get(key, 0) + npairs
        result = out
    return _distinct_postings(result)


def _root_to_output(pattern: TwigPattern) -> list[tuple[TwigNode, EdgeKind]]:
    """The root→output path as (qnode, kind-of-edge-entering-it) pairs."""
    target = pattern.output

    def find(qnode: TwigNode, kind: EdgeKind):
        if qnode is target:
            return [(qnode, kind)]
        for edge in qnode.children:
            tail = find(edge.child, edge.kind)
            if tail is not None:
                return [(qnode, kind)] + tail
        return None

    chain = find(pattern.root, "descendant")
    assert chain is not None, "output node must be in the pattern"
    return chain


def _copy_subtree(node: TwigNode) -> TwigNode:
    """A deep copy with output marks cleared (sub-twig evaluation must
    not mutate or share the caller's pattern nodes)."""
    copy = TwigNode(node.name)
    for edge in node.children:
        copy.add(_copy_subtree(edge.child), edge.kind)
    return copy


def _count_match_edges(pattern: TwigPattern, matches, counters) -> None:
    """Per-edge distinct (parent, child) pairs realized in full matches.

    The holistic plan never materializes raw per-edge join pairs, so
    its ``edge.<p>><c>.pairs`` counters report the pairs participating
    in complete twig matches — a lower bound on what the binary plan's
    identically-named counters would scan for the same edge.
    """
    if not matches:
        return
    for parent, _kind, child in pattern.edges():
        pairs = {(m[parent].pre, m[child].pre) for m in matches}
        key = f"edge.{parent}>{child}.pairs"
        counters[key] = counters.get(key, 0) + len(pairs)


def _distinct_postings(postings) -> list[Posting]:
    seen: set[int] = set()
    out: list[Posting] = []
    for posting in postings:
        if posting.pre not in seen:
            seen.add(posting.pre)
            out.append(posting)
    out.sort(key=lambda p: p.pre)
    return out
