"""Twig patterns and the plan-level entry points.

A twig pattern is a small tree of name tests connected by child (``/``)
or descendant (``//``) edges — the common core of path queries that
structural-join algorithms accept::

    book//author/last        TwigPattern.chain(("book", "//"), ("author", "/"), ...)
    book[.//year]//title     a branching twig

``evaluate_pattern`` runs one pattern through any of the three
competing physical plans (navigation, binary structural joins,
holistic TwigStack) and returns the matches of the *output node* —
so E6 compares identical logical work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Optional

from repro.storage.indexes import ElementIndex, Posting
from repro.joins.stacktree import stack_tree_desc

EdgeKind = Literal["child", "descendant"]


@dataclass
class TwigNode:
    """One pattern node: a tag name plus outgoing edges."""

    name: str
    children: list["TwigEdge"] = field(default_factory=list)
    #: marks the node whose matches the query returns
    is_output: bool = False

    def add(self, child: "TwigNode", kind: EdgeKind = "descendant") -> "TwigNode":
        self.children.append(TwigEdge(kind, child))
        return child

    def __repr__(self) -> str:
        return f"TwigNode({self.name}{'*' if self.is_output else ''})"


@dataclass
class TwigEdge:
    kind: EdgeKind
    child: TwigNode


class TwigPattern:
    """A rooted twig pattern."""

    def __init__(self, root: TwigNode):
        self.root = root
        names = [n.name for n in self.nodes()]
        if len(names) != len(set(names)):
            # bindings are keyed by name throughout the join plans — the
            # standard simplification in this literature's experiments
            raise ValueError("twig pattern nodes must have distinct names")
        outputs = [n for n in self.nodes() if n.is_output]
        if not outputs:
            # default: the last leaf in definition order
            leaves = [n for n in self.nodes() if not n.children]
            leaves[-1].is_output = True
            outputs = [leaves[-1]]
        if len(outputs) > 1:
            raise ValueError("twig pattern must have exactly one output node")
        self.output = outputs[0]

    def nodes(self) -> Iterator[TwigNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for edge in node.children:
                stack.append(edge.child)

    def leaves(self) -> list[TwigNode]:
        return [n for n in self.nodes() if not n.children]

    @classmethod
    def chain(cls, *steps: tuple[str, EdgeKind] | str) -> "TwigPattern":
        """A linear path pattern.

        ``TwigPattern.chain("a", ("b", "descendant"), ("c", "child"))``
        is ``a//b/c`` with ``c`` as output.
        """
        normalized: list[tuple[str, EdgeKind]] = []
        for step in steps:
            if isinstance(step, str):
                normalized.append((step, "descendant"))
            else:
                normalized.append(step)
        root = TwigNode(normalized[0][0])
        current = root
        for name, kind in normalized[1:]:
            current = current.add(TwigNode(name), kind)
        current.is_output = True
        return cls(root)

    def __repr__(self) -> str:
        def fmt(node: TwigNode) -> str:
            if not node.children:
                return node.name + ("*" if node.is_output else "")
            parts = []
            for edge in node.children:
                sep = "/" if edge.kind == "child" else "//"
                parts.append(sep + fmt(edge.child))
            label = node.name + ("*" if node.is_output else "")
            if len(parts) == 1:
                return label + parts[0]
            return label + "[" + "][".join(parts) + "]"
        return f"TwigPattern({fmt(self.root)})"


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


def evaluate_pattern(index: ElementIndex, pattern: TwigPattern,
                     algorithm: str = "twigstack",
                     profiler=None, cancellation=None) -> list[Posting]:
    """Matches of the pattern's output node, distinct, in document order.

    With a :class:`repro.observability.Profiler` attached, records a
    ``join.<algorithm>`` operator (items = output postings, wall time,
    plus algorithm counters: ``elements_scanned`` for all three,
    ``stack_pushes``/``path_solutions``/``output_matches`` where they
    apply).  ``elements_scanned`` is the E6 cost model the differential
    harness ranks: holistic ≤ binary ≤ navigation.

    ``cancellation`` (an optional
    :class:`repro.runtime.cancellation.CancellationToken`) is polled
    inside every algorithm's scan loop, so a deadline interrupts a join
    mid-scan instead of after it.
    """
    counters: Optional[dict[str, int]] = {} if profiler is not None else None
    if profiler is not None:
        from time import perf_counter

        t0 = perf_counter()
    if algorithm == "twigstack":
        from repro.joins.twigstack import twig_stack

        matches = twig_stack(index, pattern, counters=counters,
                             cancellation=cancellation)
        result = _distinct_postings(m[pattern.output.name] for m in matches)
    elif algorithm == "binary":
        result = binary_join_plan(index, pattern, counters=counters,
                                  cancellation=cancellation)
    elif algorithm == "navigation":
        from repro.joins.navigation import navigate_pattern

        result = navigate_pattern(index, pattern, counters=counters,
                                  cancellation=cancellation)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if profiler is not None:
        profiler.record(f"join.{algorithm}", items=len(result),
                        seconds=perf_counter() - t0, **counters)
    return result


def binary_join_plan(index: ElementIndex, pattern: TwigPattern,
                     counters: Optional[dict[str, int]] = None,
                     cancellation=None) -> list[Posting]:
    """Evaluate the twig as a sequence of binary structural joins.

    Each edge runs one stack-tree join; intermediate results are
    (bindings per pattern node) tuples — the representation whose
    possible blow-up motivated holistic twig joins.  ``counters``
    accumulates per-join ``elements_scanned``/``stack_pushes`` plus
    ``intermediate_rows`` (the blow-up the holistic join avoids).
    """
    # intermediate: list of dict name → Posting
    rows: list[dict[str, Posting]] = [
        {pattern.root.name: p} for p in index.postings(pattern.root.name)]

    def process(node: TwigNode, rows: list[dict[str, Posting]]) -> list[dict[str, Posting]]:
        for edge in node.children:
            child = edge.child
            # join current rows' bindings of `node` with child postings
            alist = _distinct_postings(row[node.name] for row in rows)
            pairs = list(stack_tree_desc(alist, index.postings(child.name),
                                         parent_child=(edge.kind == "child"),
                                         counters=counters,
                                         cancellation=cancellation))
            # group descendants by ancestor pre
            by_anc: dict[int, list[Posting]] = {}
            for a, d in pairs:
                by_anc.setdefault(a.pre, []).append(d)
            new_rows: list[dict[str, Posting]] = []
            for row in rows:
                anchor = row[node.name]
                for d in by_anc.get(anchor.pre, ()):
                    new_row = dict(row)
                    new_row[child.name] = d
                    new_rows.append(new_row)
            if counters is not None:
                counters["intermediate_rows"] = \
                    counters.get("intermediate_rows", 0) + len(new_rows)
            rows = process(child, new_rows)
        return rows

    rows = process(pattern.root, rows)
    return _distinct_postings(row[pattern.output.name] for row in rows)


def _distinct_postings(postings) -> list[Posting]:
    seen: set[int] = set()
    out: list[Posting] = []
    for posting in postings:
        if posting.pre not in seen:
            seen.add(posting.pre)
            out.append(posting)
    out.sort(key=lambda p: p.pre)
    return out
