"""Stack-Tree structural joins (Al-Khalifa et al., ICDE 2002).

Input: two posting lists, ``AList`` (potential ancestors) and
``DList`` (potential descendants), both sorted by pre (document
order).  A single merge pass with a stack of nested ancestors
produces every (a, d) containment pair in time
O(|AList| + |DList| + |output|) — never re-scanning either input, which
is the whole point versus navigation or nested loops.

``stack_tree_desc`` emits results sorted by descendant (the variant
the paper calls Stack-Tree-Desc, whose output order is document order
of d — what path semantics need).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.runtime.cancellation import POLL_MASK
from repro.storage.indexes import Posting


def stack_tree_desc(alist: list[Posting], dlist: list[Posting],
                    parent_child: bool = False,
                    counters: Optional[dict[str, int]] = None,
                    cancellation=None,
                    ) -> Iterator[tuple[Posting, Posting]]:
    """All (ancestor, descendant) pairs, sorted by descendant pre.

    ``parent_child`` restricts to direct parents (level check).
    ``counters`` (optional) accumulates ``elements_scanned`` (the merge
    touches every posting of both inputs once) and ``stack_pushes``.
    ``cancellation`` (optional CancellationToken) is polled once per
    :data:`~repro.runtime.cancellation.POLL_INTERVAL` descendants —
    per item the token costs only a reference-and-mask check (the
    no-deadline case used to pay a method call per descendant), while
    a deadline still interrupts the merge within one block of work.
    """
    if counters is not None:
        counters["elements_scanned"] = counters.get("elements_scanned", 0) \
            + len(alist) + len(dlist)
    counting = counters is not None
    pushes = 0
    stack: list[Posting] = []
    ai, di = 0, 0
    na, nd = len(alist), len(dlist)
    while di < nd:
        if cancellation is not None and (di & POLL_MASK) == 0:
            cancellation.check()
        d = dlist[di]
        # push every ancestor that starts before d
        while ai < na and alist[ai].pre < d.pre:
            a = alist[ai]
            # pop finished ancestors (not containing a)
            while stack and stack[-1].post < a.pre:
                stack.pop()
            stack.append(a)
            if counting:
                pushes += 1
            ai += 1
        # pop ancestors that end before d starts
        while stack and stack[-1].post < d.pre:
            stack.pop()
        # every stack entry contains d (the stack is a nesting chain)
        for a in stack:
            if a.label.is_ancestor_of(d.label):
                if not parent_child or a.level + 1 == d.level:
                    yield (a, d)
        di += 1
    if counting:
        counters["stack_pushes"] = counters.get("stack_pushes", 0) + pushes


def stack_tree_anc_desc(alist: list[Posting], dlist: list[Posting],
                        parent_child: bool = False,
                        distinct_descendants: bool = True,
                        counters: Optional[dict[str, int]] = None,
                        cancellation=None) -> list[Posting]:
    """The projection used by path evaluation: descendants of any ancestor.

    Returns distinct descendants in document order (each descendant is
    reported once even with many containing ancestors).  ``counters``
    and ``cancellation`` pass through to the underlying merge.
    """
    out: list[Posting] = []
    last_pre = -1
    for _a, d in stack_tree_desc(alist, dlist, parent_child,
                                 counters=counters,
                                 cancellation=cancellation):
        if distinct_descendants:
            if d.pre != last_pre:
                out.append(d)
                last_pre = d.pre
        else:
            out.append(d)
    return out


def stack_tree_ancestors(alist: list[Posting], dlist: list[Posting],
                         parent_child: bool = False,
                         counters: Optional[dict[str, int]] = None,
                         cancellation=None) -> list[Posting]:
    """Distinct ancestors that contain at least one descendant.

    (Answers ``//a[.//b]`` — the semi-join projection.)  ``counters``
    and ``cancellation`` pass through to the underlying merge.
    """
    seen: set[int] = set()
    out: list[Posting] = []
    for a, _d in stack_tree_desc(alist, dlist, parent_child,
                                 counters=counters,
                                 cancellation=cancellation):
        if a.pre not in seen:
            seen.add(a.pre)
            out.append(a)
    out.sort(key=lambda p: p.pre)
    return out
