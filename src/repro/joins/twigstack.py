"""TwigStack — holistic twig joins (Bruno, Koudas, Srivastava, 2002).

Matches a whole twig pattern in one coordinated pass over the per-tag
posting streams.  The key invariant (maintained by ``getNext``):
an element is pushed on its query node's stack only when it has a
descendant match for *every* child of that query node — so, for
ancestor–descendant-only twigs, no path solution is produced that does
not join into a full twig match (the "no useless intermediate results"
optimality).  Parent–child edges are post-filtered during path
enumeration, as in the original paper.

Phase 1 produces root-to-leaf *path solutions*; phase 2 merge-joins
them on the shared branch nodes into full matches.
"""

from __future__ import annotations

from typing import Optional

from repro.joins.patterns import TwigNode, TwigPattern
from repro.runtime.cancellation import POLL_MASK
from repro.storage.indexes import ElementIndex, Posting


class _Stream:
    __slots__ = ("postings", "cursor")

    def __init__(self, postings: list[Posting]):
        self.postings = postings
        self.cursor = 0

    def head(self) -> Optional[Posting]:
        if self.cursor < len(self.postings):
            return self.postings[self.cursor]
        return None

    def advance(self) -> None:
        self.cursor += 1


class _TwigState:
    def __init__(self, index: ElementIndex, pattern: TwigPattern):
        self.pattern = pattern
        self.streams: dict[str, _Stream] = {
            node.name: _Stream(index.postings(node.name))
            for node in pattern.nodes()}
        #: per query node: list of (posting, index-into-parent-stack)
        self.stacks: dict[str, list[tuple[Posting, int]]] = {
            node.name: [] for node in pattern.nodes()}
        self.parent_of: dict[str, TwigNode] = {}
        self.edge_kind: dict[str, str] = {}
        for node in pattern.nodes():
            for edge in node.children:
                self.parent_of[edge.child.name] = node
                self.edge_kind[edge.child.name] = edge.kind
        #: path solutions per leaf name: list of posting tuples root→leaf
        self.path_solutions: dict[str, list[tuple[Posting, ...]]] = {
            leaf.name: [] for leaf in pattern.leaves()}
        #: the root→leaf name path per leaf
        self.paths: dict[str, list[str]] = {}
        for leaf in pattern.leaves():
            path = [leaf.name]
            current = leaf.name
            while current in self.parent_of:
                current = self.parent_of[current].name
                path.append(current)
            self.paths[leaf.name] = list(reversed(path))


def twig_stack(index: ElementIndex, pattern: TwigPattern,
               counters: Optional[dict[str, int]] = None,
               cancellation=None) -> list[dict[str, Posting]]:
    """All full matches of ``pattern``: list of name → posting bindings.

    ``counters`` (optional) accumulates observability metrics:
    ``elements_scanned`` (postings consumed across all streams),
    ``stack_pushes``, ``path_solutions``, ``output_matches``.
    ``cancellation`` (optional CancellationToken) is polled once per
    :data:`~repro.runtime.cancellation.POLL_INTERVAL` coordinated
    advances — a reference-and-mask check per advance otherwise — so
    deadlines interrupt long joins within one block of work.
    """
    state = _TwigState(index, pattern)
    root = pattern.root
    counting = counters is not None
    pushes = 0
    advances = 0

    while True:
        if cancellation is not None and (advances & POLL_MASK) == 0:
            cancellation.check()
        advances += 1
        q = _get_next(state, root)
        stream = state.streams[q.name]
        head = stream.head()
        if head is None:
            break  # nothing actionable remains anywhere

        parent = state.parent_of.get(q.name)
        if parent is not None:
            _clean_stack(state, parent.name, head.pre)
        if parent is None or state.stacks[parent.name]:
            _clean_stack(state, q.name, head.pre)
            parent_ptr = len(state.stacks[parent.name]) - 1 if parent is not None else -1
            state.stacks[q.name].append((head, parent_ptr))
            if counting:
                pushes += 1
            if not q.children:  # leaf: emit path solutions now
                _emit_paths(state, q)
                state.stacks[q.name].pop()
        stream.advance()

    matches = _merge_paths(state)
    if counting:
        # the cursor of each stream is exactly how many postings the
        # coordinated pass consumed (it never runs past the end)
        counters["elements_scanned"] = counters.get("elements_scanned", 0) + sum(
            min(s.cursor, len(s.postings)) for s in state.streams.values())
        counters["stack_pushes"] = counters.get("stack_pushes", 0) + pushes
        counters["path_solutions"] = counters.get("path_solutions", 0) + sum(
            len(sols) for sols in state.path_solutions.values())
        counters["output_matches"] = counters.get("output_matches", 0) + len(matches)
    return matches


def _get_next(state: _TwigState, q: TwigNode) -> TwigNode:
    """The getNext of the paper, extended for stream exhaustion.

    A child subtree whose streams have drained stops constraining its
    parent: we skip it and coordinate on the remaining live children.
    New parent pushes are then no longer guaranteed to join with the
    drained branch (mild loss of the optimality property near stream
    end); the merge phase filters any unjoinable path solutions, so
    results stay exact.
    """
    if not q.children:
        return q
    heads: list[tuple[TwigNode, Posting]] = []
    for edge in q.children:
        ni = _get_next(state, edge.child)
        head = state.streams[ni.name].head()
        if ni is not edge.child:
            if head is not None:
                return ni  # actionable deeper node
            continue  # that branch is fully drained; ignore it
        if head is None:
            continue  # exhausted child: no longer a constraint
        heads.append((edge.child, head))
    if not heads:
        return q  # all children drained; caller acts on (or drains) q
    nmin = min(heads, key=lambda pair: pair[1].pre)
    nmax = max(heads, key=lambda pair: pair[1].pre)
    own = state.streams[q.name]
    while own.head() is not None and own.head().post < nmax[1].pre:
        own.advance()
    head = own.head()
    if head is not None and head.pre < nmin[1].pre:
        return q
    return nmin[0]


def _clean_stack(state: _TwigState, name: str, next_pre: int) -> None:
    stack = state.stacks[name]
    while stack and stack[-1][0].post < next_pre:
        stack.pop()


def _emit_paths(state: _TwigState, leaf: TwigNode) -> None:
    """Enumerate path solutions ending at the just-pushed leaf entry."""
    name = leaf.name
    entry = state.stacks[name][-1]
    solutions = _expand(state, name, entry)
    state.path_solutions[name].extend(tuple(s) for s in solutions)


def _expand(state: _TwigState, name: str, entry: tuple[Posting, int]) -> list[list[Posting]]:
    posting, parent_ptr = entry
    parent = state.parent_of.get(name)
    if parent is None:
        return [[posting]]
    kind = state.edge_kind[name]
    parent_stack = state.stacks[parent.name]
    out: list[list[Posting]] = []
    for i in range(parent_ptr + 1):
        parent_posting = parent_stack[i][0]
        if kind == "child" and parent_posting.level + 1 != posting.level:
            continue  # parent-child edges are post-filtered
        for prefix in _expand(state, parent.name, parent_stack[i]):
            out.append(prefix + [posting])
    return out


def _merge_paths(state: _TwigState) -> list[dict[str, Posting]]:
    """Phase 2: join per-leaf path solutions on shared query nodes."""
    leaves = list(state.path_solutions)
    if not leaves:
        return []
    first = leaves[0]
    matches: list[dict[str, Posting]] = [
        dict(zip(state.paths[first], solution))
        for solution in state.path_solutions[first]]
    for leaf in leaves[1:]:
        path = state.paths[leaf]
        shared = [n for n in path if n in state.paths[first] or
                  any(n in state.paths[prev] for prev in leaves[: leaves.index(leaf)])]
        # hash-join on the shared prefix bindings
        new_matches: list[dict[str, Posting]] = []
        by_key: dict[tuple, list[dict[str, Posting]]] = {}
        for match in matches:
            key = tuple(match[n].pre for n in shared if n in match)
            by_key.setdefault(key, []).append(match)
        for solution in state.path_solutions[leaf]:
            bindings = dict(zip(path, solution))
            key = tuple(bindings[n].pre for n in shared if n in bindings)
            for match in by_key.get(key, ()):
                merged = dict(match)
                merged.update(bindings)
                new_matches.append(merged)
        matches = new_matches
    return matches
