"""Structural pattern matching over labeled indexes.

The tutorial's "Query evaluation, algorithms" slide cites two
primitives that defined this literature, both implemented here from
the original papers:

- **Structural joins** (Al-Khalifa, Jagadish, Koudas, Patel, Srivastava,
  Wu — ICDE 2002): the stack-tree merge join of two document-ordered
  posting lists for one ancestor–descendant (or parent–child) edge —
  :mod:`repro.joins.stacktree`;
- **Holistic twig joins** (Bruno, Koudas, Srivastava — SIGMOD 2002):
  TwigStack, matching a whole branching path pattern in one pass
  without large intermediate edge results —
  :mod:`repro.joins.twigstack`.

:mod:`repro.joins.navigation` is the tree-walking baseline both are
compared against (experiment E6), and :mod:`repro.joins.patterns`
defines the twig-pattern language plus the plan-level entry points.
"""

from repro.joins.patterns import TwigEdge, TwigNode, TwigPattern, evaluate_pattern
from repro.joins.stacktree import stack_tree_anc_desc, stack_tree_desc
from repro.joins.navigation import navigate_anc_desc, navigate_pattern
from repro.joins.twigstack import twig_stack

__all__ = [
    "TwigPattern",
    "TwigNode",
    "TwigEdge",
    "evaluate_pattern",
    "stack_tree_desc",
    "stack_tree_anc_desc",
    "navigate_anc_desc",
    "navigate_pattern",
    "twig_stack",
]
