"""Navigation baseline: answer twig patterns by tree walking.

What a naive engine does without labeled indexes: walk the document to
find candidate roots, then recursively check every branch predicate by
walking children/descendants.  Costs O(visited subtree) per candidate
— the comparison point that makes structural joins interesting (E6).

Both entry points take an optional ``counters`` dict that accumulates
``elements_scanned``: every node the walk visits, including the
full-document scan for candidate roots.  Counting is a local integer
bump per visited node — negligible against the walking itself — and
the dict is only written once at the end.
"""

from __future__ import annotations

from typing import Optional

from repro.joins.patterns import TwigEdge, TwigNode, TwigPattern
from repro.runtime.cancellation import POLL_MASK
from repro.storage.indexes import ElementIndex, Posting
from repro.xdm.nodes import DocumentNode, ElementNode, Node


def navigate_anc_desc(index: ElementIndex, ancestor_name: str,
                      descendant_name: str, parent_child: bool = False,
                      counters: Optional[dict[str, int]] = None) -> list[Posting]:
    """``//a//d`` (or ``//a/d``) by walking from each ``a``."""
    out: list[Posting] = []
    seen: set[int] = set()
    scanned = 0
    for a in index.postings(ancestor_name):
        node = a.node
        candidates = node.children if parent_child else node.descendants()
        for child in candidates:
            scanned += 1
            if isinstance(child, ElementNode) and child.name.local == descendant_name:
                label = index.label_of(child)
                if label.pre not in seen:
                    seen.add(label.pre)
                    out.append(Posting(label, child))
    out.sort(key=lambda p: p.pre)
    if counters is not None:
        counters["elements_scanned"] = counters.get("elements_scanned", 0) + scanned
    return out


def navigate_pattern(index: ElementIndex, pattern: TwigPattern,
                     counters: Optional[dict[str, int]] = None,
                     cancellation=None) -> list[Posting]:
    """Evaluate a twig purely by navigation.

    Strategy: walk the document for candidate roots; descend along the
    root→output path, checking every side-branch predicate by recursive
    existential walks.  The ``index`` is used only to label the results
    (so all three plans return comparable Postings) — the matching
    itself never touches posting lists.
    """
    # the chain of (qnode, edge-kind-into-it) from root to the output node
    chain = _output_chain(pattern)
    outputs: list[Node] = []
    seen: set[int] = set()
    scanned = 0

    def any_candidate(node: Node, edge: TwigEdge) -> bool:
        nonlocal scanned
        candidates = node.children if edge.kind == "child" else node.descendants()
        for candidate in candidates:
            scanned += 1
            if isinstance(candidate, ElementNode) and \
                    candidate.name.local == edge.child.name:
                if exists(candidate, edge.child):
                    return True
        return False

    def exists(node: Node, qnode: TwigNode) -> bool:
        """Existential check: pattern subtree rooted at qnode embeds at node."""
        for edge in qnode.children:
            if not any_candidate(node, edge):
                return False
        return True

    def side_branches_ok(node: Node, qnode: TwigNode, skip: TwigNode | None) -> bool:
        for edge in qnode.children:
            if skip is not None and edge.child is skip:
                continue
            if not any_candidate(node, edge):
                return False
        return True

    def walk(node: Node, depth: int) -> None:
        nonlocal scanned
        qnode, _ = chain[depth]
        next_qnode = chain[depth + 1][0] if depth + 1 < len(chain) else None
        if not side_branches_ok(node, qnode, next_qnode):
            return
        if next_qnode is None:
            if id(node) not in seen:
                seen.add(id(node))
                outputs.append(node)
            return
        next_kind = chain[depth + 1][1]
        candidates = node.children if next_kind == "child" else node.descendants()
        for candidate in candidates:
            scanned += 1
            if isinstance(candidate, ElementNode) and \
                    candidate.name.local == next_qnode.name:
                walk(candidate, depth + 1)

    root_name = pattern.root.name
    for node in index.doc.descendants_or_self():
        # per-block poll: a reference-and-mask check per node; the
        # token's check() method fires once per POLL_INTERVAL nodes
        if cancellation is not None and (scanned & POLL_MASK) == 0:
            cancellation.check()
        scanned += 1
        if isinstance(node, ElementNode) and node.name.local == root_name:
            walk(node, 0)

    out = [Posting(index.label_of(n), n) for n in outputs]
    out.sort(key=lambda p: p.pre)
    if counters is not None:
        counters["elements_scanned"] = counters.get("elements_scanned", 0) + scanned
    return out


def _output_chain(pattern: TwigPattern) -> list[tuple[TwigNode, str]]:
    """The root→output path as (qnode, edge-kind-entering-it) pairs."""
    target = pattern.output

    def find(qnode: TwigNode, kind: str) -> list[tuple[TwigNode, str]] | None:
        if qnode is target:
            return [(qnode, kind)]
        for edge in qnode.children:
            tail = find(edge.child, edge.kind)
            if tail is not None:
                return [(qnode, kind)] + tail
        return None

    chain = find(pattern.root, "descendant")
    assert chain is not None, "output node must be in the pattern"
    return chain
