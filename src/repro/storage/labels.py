"""Node labeling: (pre, post, level) intervals and Dewey order keys.

The region/interval encoding behind structural joins (Al-Khalifa et
al.): node *a* is an ancestor of node *d* iff

    a.pre < d.pre  and  a.post > d.post

and a parent iff additionally ``a.level + 1 == d.level``.  One
document walk assigns all labels.

Dewey labels (``1.3.2`` = second child of third child of root) support
the same tests (prefix containment) plus cheap sibling/update
reasoning; both are provided because the literature of the era uses
both, and the benchmarks compare them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.xdm.nodes import DocumentNode, ElementNode, Node


@dataclass(frozen=True, slots=True, order=True)
class Label:
    """A (pre, post, level) region label. Sorts by pre order."""

    pre: int
    post: int
    level: int

    def is_ancestor_of(self, other: "Label") -> bool:
        return self.pre < other.pre and self.post > other.post

    def is_parent_of(self, other: "Label") -> bool:
        return self.is_ancestor_of(other) and self.level + 1 == other.level

    def is_descendant_of(self, other: "Label") -> bool:
        return other.is_ancestor_of(self)

    def precedes(self, other: "Label") -> bool:
        """Strictly before in document order, not an ancestor."""
        return self.pre < other.pre and self.post < other.post


@dataclass(frozen=True, slots=True)
class DeweyLabel:
    """A Dewey order key: the path of child indexes from the root."""

    path: tuple[int, ...]

    def is_ancestor_of(self, other: "DeweyLabel") -> bool:
        n = len(self.path)
        return n < len(other.path) and other.path[:n] == self.path

    def is_parent_of(self, other: "DeweyLabel") -> bool:
        return len(other.path) == len(self.path) + 1 and \
            other.path[: len(self.path)] == self.path

    @property
    def level(self) -> int:
        return len(self.path)

    def __lt__(self, other: "DeweyLabel") -> bool:
        return self.path < other.path

    def __str__(self) -> str:
        return ".".join(str(p) for p in self.path)


def label_document(doc: DocumentNode | ElementNode,
                   dewey: bool = False) -> dict[int, Label | DeweyLabel]:
    """Label every node (elements, attributes, text, ...) in one walk.

    Returns ``id(node) → label``.  ``pre`` numbers follow document
    order including attributes; ``post`` numbers close after all
    descendants, so interval containment is exactly ancestry.
    """
    if dewey:
        return _dewey_labels(doc)
    labels: dict[int, Label] = {}
    # ONE counter drives both pre and post (region/interval encoding):
    # a node's (pre, post) brackets exactly its descendants' numbers, so
    # cross-comparisons like "a.post < d.pre" (a ends before d starts)
    # are meaningful — the stack-tree join relies on that.
    counter = 0

    stack: list[tuple[Node, int, bool]] = [(doc, 0, False)]
    pre_of: dict[int, int] = {}
    level_of: dict[int, int] = {}
    while stack:
        node, level, visited = stack.pop()
        if visited:
            labels[id(node)] = Label(pre_of[id(node)], counter, level_of[id(node)])
            counter += 1
            continue
        pre_of[id(node)] = counter
        level_of[id(node)] = level
        counter += 1
        stack.append((node, level, True))
        if isinstance(node, ElementNode):
            for attr in node.attributes:
                labels[id(attr)] = Label(counter, counter + 1, level + 1)
                counter += 2
        for child in reversed(node.children):
            stack.append((child, level + 1, False))
    return labels


def _dewey_labels(doc: Node) -> dict[int, DeweyLabel]:
    labels: dict[int, DeweyLabel] = {id(doc): DeweyLabel(())}
    stack: list[tuple[Node, tuple[int, ...]]] = [(doc, ())]
    while stack:
        node, path = stack.pop()
        position = 0
        if isinstance(node, ElementNode):
            for attr in node.attributes:
                position += 1
                labels[id(attr)] = DeweyLabel(path + (position,))
        for child in node.children:
            position += 1
            child_path = path + (position,)
            labels[id(child)] = DeweyLabel(child_path)
            stack.append((child, child_path))
    return labels
