"""Disk persistence: segment files and the durable catalog manifest.

The on-disk layout behind ``repro.catalog(path=...)``.  One directory
per collection::

    <path>/manifest.json          versioned catalog manifest
    <path>/<name>-<gen>.seg       one segment per document

A **segment** ("RSG1") is the paper's token-array representation plus
everything the planner and the index-backed access paths need, so a
reopened catalog never re-parses XML:

    magic "RSG1" | version u16 | section count u16
    section table: tag(4) | offset u64 | length u64 | crc32 u32
    section payloads ...

Sections:

- ``TOKS`` — the document as a pooled binary token stream, byte-for-
  byte the :mod:`repro.tokens.binary` ("RTS1") format; trees are
  rebuilt from it with :func:`~repro.tokens.build.tree_from_tokens`;
- ``LABL`` — the (pre, post, level) region labels as three ``u32``
  arrays, indexed by the deterministic pre-order node ordinal
  (:func:`enumerate_nodes` — the exact order
  :func:`~repro.storage.labels.label_document` assigns ``pre`` in);
- ``EPST`` / ``VPST`` — element and value posting lists as node
  ordinals (already document-ordered: no rebuild sort);
- ``STAT`` — :class:`~repro.storage.stats.DocumentStats` as JSON,
  including the PR 7 edge-pair tables, decoded without touching the
  tree (the planner runs before any document materializes);
- ``META`` — base URI and friends.

Node references can't be persisted, so posting lists store *ordinals*:
on load the tree is rebuilt from ``TOKS`` and both sides enumerate
nodes in the same structural order, which rebinds every ordinal to a
live node.  Loading is mmap-backed and per-section (CRC-checked), so
opening a catalog reads only the manifest; statistics decode on first
planner access and trees materialize on first bind.

**Crash safety.**  Every file write goes *temp → fsync → atomic
rename → directory fsync* (``durability="sync"``; ``"none"`` skips the
fsyncs but keeps the atomic rename).  A segment is committed before
the manifest that references it, so a crash at any point leaves the
manifest describing a consistent previous state; entries whose segment
is missing or truncated (possible only after a ``durability="none"``
power loss) are rolled back when the manifest is read.  Superseded
segments are deleted only after the new manifest lands; stragglers
from an interrupted commit are cleaned by :meth:`CatalogStorage.
vacuum`.  One process writes a collection at a time — readers
(pre-forked worker children) attach read-only and re-read the manifest
via :meth:`CatalogStorage.reload`.

The manifest also carries two durable counters: ``next_generation``
(document ingest generations survive restarts, so compile-cache and
server result-cache fingerprints can never collide with a previous
process's) and ``result_epoch`` (the server result cache's per-tenant
invalidation epoch — see :mod:`repro.server.cache`).
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import threading
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional
from urllib.parse import quote

from repro.errors import StorageError
from repro.storage.indexes import ElementIndex, ValueIndex
from repro.storage.labels import Label
from repro.storage.stats import DocumentStats
from repro.storage.stores import BaseStore
from repro.tokens.binary import read_binary
from repro.tokens.build import tree_from_tokens
from repro.xdm.nodes import DocumentNode, ElementNode, Node

_SEG_MAGIC = b"RSG1"
_SEG_VERSION = 1
_HEADER = struct.Struct("<4sHH")        # magic, version, section count
_TABLE_ENTRY = struct.Struct("<4sQQI")  # tag, offset, length, crc32
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

SEC_TOKENS = b"TOKS"
SEC_LABELS = b"LABL"
SEC_STATS = b"STAT"
SEC_EPOST = b"EPST"
SEC_VPOST = b"VPST"
SEC_META = b"META"

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1

#: the two durability levels ``DocumentCatalog.add`` accepts
DURABILITIES = ("none", "sync")

# 'I' is 4 bytes on every CPython that matters; fall back defensively
_U32_CODE = "I" if array("I").itemsize == 4 else "L"


def check_durability(durability: str) -> str:
    if durability not in DURABILITIES:
        raise ValueError(f"durability must be one of {list(DURABILITIES)}, "
                         f"got {durability!r}")
    return durability


# -- u32 arrays (little-endian on disk) -----------------------------------

def _pack_u32s(values: Iterable[int]) -> bytes:
    arr = array(_U32_CODE, values)
    if sys.byteorder == "big":
        arr.byteswap()
    return arr.tobytes()


def _unpack_u32s(buf, count: int) -> array:
    arr = array(_U32_CODE)
    arr.frombytes(bytes(buf[: count * 4]))
    if len(arr) != count:
        raise StorageError("truncated u32 array in segment")
    if sys.byteorder == "big":
        arr.byteswap()
    return arr


# -- node enumeration ------------------------------------------------------

def enumerate_nodes(doc: DocumentNode) -> list[Node]:
    """Every node of ``doc`` in the structural order ``label_document``
    assigns ``pre`` numbers in: node, then its attributes, then its
    children (depth-first).

    The order depends only on tree structure, which round-trips through
    the token stream — so the writer's ordinal for a node and the
    reader's ordinal after rebuilding the tree always agree.  This is
    what lets posting lists persist as plain integers.
    """
    out: list[Node] = []
    stack: list[Node] = [doc]
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, ElementNode):
            out.extend(node.attributes)
        children = node.children
        if children:
            stack.extend(reversed(children))
    return out


# -- segment encode --------------------------------------------------------

def _encode_epost(element_index: ElementIndex,
                  ordinals: dict[int, int]) -> bytes:
    names = element_index.names()
    out = bytearray(_U32.pack(len(names)))
    for name in names:
        raw = name.encode("utf-8")
        out += _U16.pack(len(raw)) + raw
        ords = [ordinals[id(p.node)] for p in element_index.postings(name)]
        out += _U32.pack(len(ords)) + _pack_u32s(ords)
    return bytes(out)


def _encode_vpost(value_index: ValueIndex,
                  ordinals: dict[int, int]) -> bytes:
    items = sorted(value_index.entries(), key=lambda kv: kv[0])
    out = bytearray(_U32.pack(len(items)))
    for (name, value), nodes in items:
        raw_name = name.encode("utf-8")
        raw_value = value.encode("utf-8")
        out += _U16.pack(len(raw_name)) + raw_name
        out += _U32.pack(len(raw_value)) + raw_value
        out += _U32.pack(len(nodes)) + _pack_u32s(ordinals[id(n)]
                                                  for n in nodes)
    return bytes(out)


def build_segment(*, tokens_blob: bytes, stats: DocumentStats, indexed: bool,
                  doc: Optional[DocumentNode],
                  element_index: Optional[ElementIndex],
                  value_index: Optional[ValueIndex],
                  meta: dict) -> bytes:
    """Assemble one segment file image (header + table + sections)."""
    sections: list[tuple[bytes, bytes]] = [(SEC_TOKENS, bytes(tokens_blob))]
    if indexed:
        if doc is None or element_index is None or value_index is None:
            raise StorageError(
                "an indexed segment needs the materialized tree and both "
                "indexes")
        nodes = enumerate_nodes(doc)
        labels = element_index.labels
        if len(labels) != len(nodes):
            raise StorageError(
                f"label table covers {len(labels)} nodes but the tree "
                f"enumerates {len(nodes)}")
        ordinals = {id(n): i for i, n in enumerate(nodes)}
        try:
            labl = (_U32.pack(len(nodes))
                    + _pack_u32s(labels[id(n)].pre for n in nodes)
                    + _pack_u32s(labels[id(n)].post for n in nodes)
                    + _pack_u32s(labels[id(n)].level for n in nodes))
            sections.append((SEC_LABELS, labl))
            sections.append((SEC_EPOST, _encode_epost(element_index,
                                                      ordinals)))
            sections.append((SEC_VPOST, _encode_vpost(value_index,
                                                      ordinals)))
        except KeyError as exc:
            raise StorageError(
                f"index references a node outside the enumerated tree "
                f"({exc})") from exc
    sections.append((SEC_STATS, json.dumps(
        stats.to_dict(), separators=(",", ":")).encode("utf-8")))
    sections.append((SEC_META, json.dumps(
        meta, separators=(",", ":")).encode("utf-8")))

    header = _HEADER.pack(_SEG_MAGIC, _SEG_VERSION, len(sections))
    offset = len(header) + _TABLE_ENTRY.size * len(sections)
    table = bytearray()
    payload = bytearray()
    for tag, data in sections:
        table += _TABLE_ENTRY.pack(tag, offset, len(data), zlib.crc32(data))
        payload += data
        offset += len(data)
    return header + bytes(table) + bytes(payload)


# -- segment decode --------------------------------------------------------

class SegmentReader:
    """One open segment file, mmap-backed, sections decoded on demand."""

    def __init__(self, path: Path, expected_size: Optional[int] = None):
        self._path = path
        try:
            self._fh = open(path, "rb")
        except OSError as exc:
            raise StorageError(f"cannot open segment {path}: {exc}") from exc
        try:
            size = os.fstat(self._fh.fileno()).st_size
            if expected_size is not None and size != expected_size:
                raise StorageError(
                    f"segment {path} is {size} bytes; the manifest "
                    f"committed {expected_size} (partial write?)")
            if size < _HEADER.size:
                raise StorageError(f"segment {path} is truncated")
            self._mm = mmap.mmap(self._fh.fileno(), 0,
                                 access=mmap.ACCESS_READ)
        except BaseException:
            self._fh.close()
            raise
        self._view = memoryview(self._mm)
        magic, version, count = _HEADER.unpack_from(self._view, 0)
        if magic != _SEG_MAGIC:
            self.close()
            raise StorageError(f"segment {path}: bad magic {magic!r}")
        if version != _SEG_VERSION:
            self.close()
            raise StorageError(
                f"segment {path}: unsupported version {version}")
        self._sections: dict[bytes, tuple[int, int, int]] = {}
        pos = _HEADER.size
        for _ in range(count):
            if pos + _TABLE_ENTRY.size > size:
                self.close()
                raise StorageError(f"segment {path}: truncated section table")
            tag, offset, length, crc = _TABLE_ENTRY.unpack_from(self._view,
                                                                pos)
            if offset + length > size:
                self.close()
                raise StorageError(
                    f"segment {path}: section {tag!r} overruns the file")
            self._sections[bytes(tag)] = (offset, length, crc)
            pos += _TABLE_ENTRY.size

    def has(self, tag: bytes) -> bool:
        return tag in self._sections

    def section(self, tag: bytes) -> memoryview:
        """A zero-copy view of one section, CRC-verified."""
        try:
            offset, length, crc = self._sections[tag]
        except KeyError:
            raise StorageError(
                f"segment {self._path} has no {tag!r} section") from None
        view = self._view[offset: offset + length]
        if zlib.crc32(view) != crc:
            raise StorageError(
                f"segment {self._path}: section {tag!r} fails its CRC "
                f"(corrupt file)")
        return view

    def stats(self) -> DocumentStats:
        return DocumentStats.from_dict(
            json.loads(bytes(self.section(SEC_STATS)).decode("utf-8")))

    def meta(self) -> dict:
        return json.loads(bytes(self.section(SEC_META)).decode("utf-8"))

    def materialize_tree(self) -> DocumentNode:
        """Rebuild the tree from the token section — never from XML."""
        doc = tree_from_tokens(read_binary(self.section(SEC_TOKENS)))
        base_uri = self.meta().get("base_uri", "")
        if base_uri:
            doc._base_uri = base_uri
        return doc

    def materialize_indexed(self) \
            -> tuple[DocumentNode, ElementIndex, ValueIndex]:
        """Rebuild tree + labels + both indexes, rebinding ordinals."""
        doc = self.materialize_tree()
        nodes = enumerate_nodes(doc)
        labl = self.section(SEC_LABELS)
        (count,) = _U32.unpack_from(labl, 0)
        if count != len(nodes):
            raise StorageError(
                f"segment {self._path}: label table covers {count} nodes "
                f"but the rebuilt tree has {len(nodes)}")
        body = labl[4:]
        pre = _unpack_u32s(body, count)
        post = _unpack_u32s(body[4 * count:], count)
        level = _unpack_u32s(body[8 * count:], count)
        labels: dict[int, Label] = {
            id(node): Label(pre[i], post[i], level[i])
            for i, node in enumerate(nodes)}
        element_index = ElementIndex.from_persisted(
            doc, nodes, labels, self._decode_epost())
        value_index = ValueIndex.from_persisted(nodes, self._decode_vpost())
        return doc, element_index, value_index

    def _decode_epost(self) -> dict[str, array]:
        view = self.section(SEC_EPOST)
        (n_names,) = _U32.unpack_from(view, 0)
        pos = 4
        out: dict[str, array] = {}
        for _ in range(n_names):
            (name_len,) = _U16.unpack_from(view, pos)
            pos += 2
            name = bytes(view[pos: pos + name_len]).decode("utf-8")
            pos += name_len
            (n,) = _U32.unpack_from(view, pos)
            pos += 4
            out[name] = _unpack_u32s(view[pos:], n)
            pos += 4 * n
        return out

    def _decode_vpost(self) -> dict[tuple[str, str], array]:
        view = self.section(SEC_VPOST)
        (n_keys,) = _U32.unpack_from(view, 0)
        pos = 4
        out: dict[tuple[str, str], array] = {}
        for _ in range(n_keys):
            (name_len,) = _U16.unpack_from(view, pos)
            pos += 2
            name = bytes(view[pos: pos + name_len]).decode("utf-8")
            pos += name_len
            (value_len,) = _U32.unpack_from(view, pos)
            pos += 4
            value = bytes(view[pos: pos + value_len]).decode("utf-8")
            pos += value_len
            (n,) = _U32.unpack_from(view, pos)
            pos += 4
            out[(name, value)] = _unpack_u32s(view[pos:], n)
            pos += 4 * n
        return out

    def close(self) -> None:
        self._view.release()
        try:
            self._mm.close()
        except BufferError:
            # a lazy consumer still holds a section view; the mapping
            # closes when the last view is dropped
            pass
        self._fh.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the disk-backed store handle -----------------------------------------

class DiskStore(BaseStore):
    """A :class:`BaseStore` whose backing is a persisted segment.

    ``kind`` mirrors the ingested store's kind, and so do the access
    semantics: a ``tree`` document pins one rebuilt tree, ``tokens``
    and ``text`` documents rebuild per :meth:`document` call.  Nothing
    ever re-parses XML — every tree comes from the token section.
    """

    def __init__(self, storage: "CatalogStorage", entry: "ManifestEntry"):
        self._storage = storage
        self._entry = entry
        self.kind = entry.kind
        self._doc: Optional[DocumentNode] = None
        self._stats: Optional[DocumentStats] = None

    def document(self) -> DocumentNode:
        if self._entry.kind == "tree":
            if self._doc is None:
                self._doc = self._load_tree()
            return self._doc
        return self._load_tree()

    def _load_tree(self) -> DocumentNode:
        with self._storage.open_segment(self._entry) as reader:
            return reader.materialize_tree()

    def stats(self) -> DocumentStats:
        """Decoded straight from the segment's ``STAT`` section — the
        planner costs access paths without materializing the tree."""
        if self._stats is None:
            with self._storage.open_segment(self._entry) as reader:
                self._stats = reader.stats()
        return self._stats

    def tokens(self):
        """Stream the persisted tokens (decoded eagerly: the segment is
        closed before returning)."""
        with self._storage.open_segment(self._entry) as reader:
            return list(read_binary(reader.section(SEC_TOKENS)))

    def resident_bytes(self) -> int:
        if self._doc is None:
            return 0
        return sum(1 for _ in self._doc.descendants_or_self()) * 200


# -- the durable catalog directory ----------------------------------------

@dataclass(frozen=True)
class ManifestEntry:
    """One committed document: what the manifest knows without IO."""

    name: str
    file: str
    generation: int
    kind: str
    indexed: bool
    size: int


def _fresh_manifest() -> dict:
    return {"format": MANIFEST_FORMAT, "next_generation": 1,
            "result_epoch": 0, "documents": {}}


class CatalogStorage:
    """One collection directory: segments plus the versioned manifest.

    Single-writer, many-reader: the process that ingests commits
    through this object; reader processes (pre-forked children) open
    the same directory and :meth:`reload` after each parent commit.
    Opening never deletes or rewrites anything — invalid entries are
    rolled back *in memory*, so a reader can open mid-commit safely.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._manifest = self._read_manifest(create=True)

    # -- manifest ----------------------------------------------------------

    def _read_manifest(self, create: bool = False) -> dict:
        mpath = self.path / MANIFEST_NAME
        try:
            raw = mpath.read_text("utf-8")
        except FileNotFoundError:
            manifest = _fresh_manifest()
            if create:
                # establish the directory as a collection (the server's
                # warm-restart scan looks for manifest.json)
                self._commit_manifest(manifest, "sync")
            return manifest
        except OSError as exc:
            raise StorageError(
                f"cannot read catalog manifest {mpath}: {exc}") from exc
        try:
            manifest = json.loads(raw)
        except ValueError as exc:
            raise StorageError(
                f"corrupt catalog manifest {mpath}: {exc}") from exc
        fmt = manifest.get("format")
        if fmt != MANIFEST_FORMAT:
            raise StorageError(
                f"unsupported catalog format {fmt!r} in {mpath} "
                f"(this build reads format {MANIFEST_FORMAT})")
        self._rollback(manifest)
        return manifest

    def _rollback(self, manifest: dict) -> None:
        """Drop entries whose segment is missing or truncated.

        Under ``durability="sync"`` this never fires (a segment is
        fully on disk before the manifest referencing it); after a
        ``durability="none"`` power loss the rename may have landed
        without the data, and the catalog rolls back to the documents
        that did survive.
        """
        docs = manifest.setdefault("documents", {})
        for name in list(docs):
            entry = docs[name]
            try:
                size = (self.path / entry["file"]).stat().st_size
            except OSError:
                size = -1
            if size != entry.get("size"):
                del docs[name]

    def _commit_manifest(self, manifest: dict, durability: str) -> None:
        data = json.dumps(manifest, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        self._write_file(self.path / MANIFEST_NAME, data, durability)

    def _write_file(self, target: Path, data: bytes,
                    durability: str) -> None:
        """The commit primitive: temp → fsync → rename → dir fsync."""
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            if durability == "sync":
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, target)
        if durability == "sync":
            self._sync_dir()

    def _sync_dir(self) -> None:
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- reads -------------------------------------------------------------

    def entries(self) -> dict[str, ManifestEntry]:
        with self._lock:
            return {name: ManifestEntry(
                        name=name, file=e["file"],
                        generation=int(e["generation"]), kind=e["kind"],
                        indexed=bool(e["indexed"]), size=int(e["size"]))
                    for name, e in self._manifest["documents"].items()}

    def reload(self) -> dict[str, ManifestEntry]:
        """Re-read the manifest from disk (reader processes call this
        after the writer commits)."""
        with self._lock:
            self._manifest = self._read_manifest()
        return self.entries()

    def open_segment(self, entry: ManifestEntry) -> SegmentReader:
        return SegmentReader(self.path / entry.file,
                             expected_size=entry.size)

    def shard_map(self) -> Optional[dict]:
        """The persisted shard assignment, or None.

        Shape: ``{"shards": N, "assignment": {doc_name: shard_id}}`` —
        written by the scatter-gather router (in the writer process)
        so shard ownership survives restarts: a document keeps landing
        on the worker that has its segment materialized warm.
        """
        with self._lock:
            stored = self._manifest.get("shard_map")
            if not stored:
                return None
            return {"shards": int(stored["shards"]),
                    "assignment": {str(k): int(v)
                                   for k, v in stored["assignment"].items()}}

    @property
    def next_generation(self) -> int:
        return int(self._manifest.get("next_generation", 1))

    @property
    def result_epoch(self) -> int:
        return int(self._manifest.get("result_epoch", 0))

    # -- writes ------------------------------------------------------------

    def persist_document(self, name: str, *, kind: str, indexed: bool,
                         tokens_blob: bytes, stats: DocumentStats,
                         doc: Optional[DocumentNode] = None,
                         element_index: Optional[ElementIndex] = None,
                         value_index: Optional[ValueIndex] = None,
                         base_uri: str = "",
                         durability: str = "sync") -> ManifestEntry:
        """Commit one document: segment first, then the manifest.

        Draws the durable generation counter, so the returned entry's
        ``generation`` is unique across every process that ever wrote
        this collection.
        """
        check_durability(durability)
        with self._lock:
            generation = int(self._manifest.get("next_generation", 1))
            filename = f"{quote(name, safe='')}-{generation}.seg"
            blob = build_segment(
                tokens_blob=tokens_blob, stats=stats, indexed=indexed,
                doc=doc, element_index=element_index,
                value_index=value_index,
                meta={"name": name, "kind": kind, "base_uri": base_uri})
            self._write_file(self.path / filename, blob, durability)
            old = self._manifest["documents"].get(name)
            self._manifest["documents"][name] = {
                "file": filename, "generation": generation, "kind": kind,
                "indexed": bool(indexed), "size": len(blob)}
            self._manifest["next_generation"] = generation + 1
            self._commit_manifest(self._manifest, durability)
            if old is not None and old["file"] != filename:
                # only after the new manifest landed — a crash before
                # this line leaves a consistent catalog either way
                (self.path / old["file"]).unlink(missing_ok=True)
            return ManifestEntry(name, filename, generation, kind,
                                 bool(indexed), len(blob))

    def remove_document(self, name: str, durability: str = "sync") -> bool:
        check_durability(durability)
        with self._lock:
            old = self._manifest["documents"].pop(name, None)
            if old is None:
                return False
            self._commit_manifest(self._manifest, durability)
            (self.path / old["file"]).unlink(missing_ok=True)
            return True

    def store_shard_map(self, shards: int, assignment: dict[str, int],
                        durability: str = "sync") -> None:
        """Persist the shard assignment through the manifest commit
        path (single writer; readers pick it up via :meth:`reload`)."""
        check_durability(durability)
        with self._lock:
            self._manifest["shard_map"] = {
                "shards": int(shards),
                "assignment": {str(k): int(v)
                               for k, v in sorted(assignment.items())}}
            self._commit_manifest(self._manifest, durability)

    def bump_result_epoch(self, durability: str = "sync") -> int:
        check_durability(durability)
        with self._lock:
            epoch = int(self._manifest.get("result_epoch", 0)) + 1
            self._manifest["result_epoch"] = epoch
            self._commit_manifest(self._manifest, durability)
            return epoch

    def vacuum(self) -> list[str]:
        """Delete ``*.tmp`` files and segments the manifest no longer
        references (stragglers of interrupted commits).  Writer-only:
        never called on open, so readers can open mid-commit."""
        with self._lock:
            keep = {e["file"]
                    for e in self._manifest["documents"].values()}
            removed = []
            for child in sorted(self.path.iterdir()):
                if child.name == MANIFEST_NAME or child.name in keep:
                    continue
                if child.suffix == ".seg" or child.name.endswith(".tmp"):
                    child.unlink(missing_ok=True)
                    removed.append(child.name)
            return removed

    def __repr__(self) -> str:
        return f"CatalogStorage({str(self.path)!r})"
