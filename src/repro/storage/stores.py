"""The three storage modes, behind one interface.

Each store ingests XML text once and serves documents to the query
engine; what differs is what lives between queries:

- :class:`TextStore` keeps the text — every access re-parses (the
  tutorial: "need to re-parse (re-validate) all the time");
- :class:`TreeStore` keeps the materialized tree (+ lazily built
  indexes) — fast navigation, biggest resident footprint;
- :class:`TokenStore` keeps the pooled binary token form — compact,
  streams without parsing, rebuilds trees only on demand.

Constructors are keyword-only as of 1.2 (``TreeStore(xml_text=...)``);
positional calls still work behind a :class:`DeprecationWarning`.
Every store exposes a common :meth:`BaseStore.stats` with per-document
statistics for the access-path planner.
"""

from __future__ import annotations

import warnings
from typing import Iterator, Optional

from repro.storage.indexes import ElementIndex, ValueIndex
from repro.storage.stats import DocumentStats, collect_stats
from repro.tokens.binary import read_binary, write_binary
from repro.tokens.build import tokens_from_events, tree_from_tokens
from repro.tokens.token import Token
from repro.xdm.build import parse_document
from repro.xdm.nodes import DocumentNode
from repro.xmlio.parser import parse_events


#: the keyword defaults every store constructor shares — the single
#: source the legacy shim uses to tell "explicitly passed" from default
_INIT_DEFAULTS = {"xml_text": None, "base_uri": "", "pooled": True}


def _init_kwargs(cls_name: str, args: tuple, names: tuple[str, ...],
                 **values) -> dict:
    """The consolidated 1.2 constructor shim, one call per store.

    Maps legacy positional arguments onto the keyword surface (warning
    once per call site), merges them with keywords actually passed, and
    returns the final keyword values.  With no positional arguments it
    is a pass-through.
    """
    if not args:
        return values
    if len(args) > len(names):
        raise TypeError(
            f"{cls_name}() takes at most {len(names)} positional arguments "
            f"({len(args)} given)")
    warnings.warn(
        f"positional arguments to {cls_name}() are deprecated since 1.2; "
        f"use keywords, e.g. {cls_name}(xml_text=...)",
        DeprecationWarning, stacklevel=3)
    out = {name: value for name, value in values.items()
           if value != _INIT_DEFAULTS[name]}
    for name, value in zip(names, args):
        if name in out:
            raise TypeError(f"{cls_name}() got multiple values for argument {name!r}")
        out[name] = value
    for name in names:
        out.setdefault(name, _INIT_DEFAULTS[name])
    return out


class BaseStore:
    """Common store interface."""

    def document(self) -> DocumentNode:
        """A materialized tree for the stored document."""
        raise NotImplementedError

    def resident_bytes(self) -> int:
        """Approximate size of what the store keeps resident."""
        raise NotImplementedError

    def stats(self) -> DocumentStats:
        """Per-document statistics, collected once and cached."""
        cached = getattr(self, "_stats", None)
        if cached is None:
            cached = collect_stats(self.document())
            self._stats = cached
        return cached

    def invalidate_stats(self) -> None:
        """Drop the cached statistics so the next :meth:`stats` call
        re-walks the document.  Catalogs call this when a store is
        re-registered under an existing name — a mutated backing (e.g.
        a :class:`TextStore` whose ``text`` was replaced) must never
        serve stale cardinalities to the planner."""
        self._stats = None

    kind: str = "base"


class TextStore(BaseStore):
    """Plain text; parses on every access."""

    kind = "text"

    def __init__(self, *args, xml_text: Optional[str] = None, base_uri: str = ""):
        kw = _init_kwargs("TextStore", args, ("xml_text", "base_uri"),
                          xml_text=xml_text, base_uri=base_uri)
        if kw["xml_text"] is None:
            raise TypeError("TextStore() missing required argument: 'xml_text'")
        self.text = kw["xml_text"]
        self.base_uri = kw["base_uri"]

    def document(self) -> DocumentNode:
        return parse_document(self.text, self.base_uri)

    def resident_bytes(self) -> int:
        return len(self.text.encode("utf-8"))


class TreeStore(BaseStore):
    """Materialized tree plus lazily-built element/value indexes."""

    kind = "tree"

    def __init__(self, *args, xml_text: Optional[str] = None, base_uri: str = ""):
        kw = _init_kwargs("TreeStore", args, ("xml_text", "base_uri"),
                          xml_text=xml_text, base_uri=base_uri)
        if kw["xml_text"] is None:
            raise TypeError("TreeStore() missing required argument: 'xml_text'")
        self._doc = parse_document(kw["xml_text"], kw["base_uri"])
        self._element_index: Optional[ElementIndex] = None
        self._value_index: Optional[ValueIndex] = None

    @classmethod
    def from_document(cls, doc: DocumentNode) -> "TreeStore":
        store = cls.__new__(cls)
        store._doc = doc
        store._element_index = None
        store._value_index = None
        return store

    def document(self) -> DocumentNode:
        return self._doc

    @property
    def element_index(self) -> ElementIndex:
        if self._element_index is None:
            self._element_index = ElementIndex(self._doc)
        return self._element_index

    @property
    def value_index(self) -> ValueIndex:
        if self._value_index is None:
            self._value_index = ValueIndex(self._doc)
        return self._value_index

    def resident_bytes(self) -> int:
        # rough object-graph estimate: nodes dominate
        count = sum(1 for _ in self._doc.descendants_or_self())
        return count * 200


class TokenStore(BaseStore):
    """Binary pooled TokenStream; streams tokens without re-parsing text."""

    kind = "tokens"

    def __init__(self, *args, xml_text: Optional[str] = None, base_uri: str = "",
                 pooled: bool = True):
        kw = _init_kwargs("TokenStore", args, ("xml_text", "base_uri", "pooled"),
                          xml_text=xml_text, base_uri=base_uri, pooled=pooled)
        if kw["xml_text"] is None:
            raise TypeError("TokenStore() missing required argument: 'xml_text'")
        events = parse_events(kw["xml_text"], kw["base_uri"])
        self.blob = write_binary(tokens_from_events(events),
                                 pooled=kw["pooled"])
        self.base_uri = kw["base_uri"]

    def tokens(self) -> Iterator[Token]:
        """Stream the stored tokens (lazy decode)."""
        return read_binary(self.blob)

    def document(self) -> DocumentNode:
        return tree_from_tokens(self.tokens())

    def resident_bytes(self) -> int:
        return len(self.blob)
