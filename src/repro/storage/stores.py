"""The three storage modes, behind one interface.

Each store ingests XML text once and serves documents to the query
engine; what differs is what lives between queries:

- :class:`TextStore` keeps the text — every access re-parses (the
  tutorial: "need to re-parse (re-validate) all the time");
- :class:`TreeStore` keeps the materialized tree (+ lazily built
  indexes) — fast navigation, biggest resident footprint;
- :class:`TokenStore` keeps the pooled binary token form — compact,
  streams without parsing, rebuilds trees only on demand.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.storage.indexes import ElementIndex, ValueIndex
from repro.tokens.binary import read_binary, write_binary
from repro.tokens.build import tokens_from_events, tree_from_tokens
from repro.tokens.token import Token
from repro.xdm.build import parse_document
from repro.xdm.nodes import DocumentNode
from repro.xmlio.parser import parse_events


class BaseStore:
    """Common store interface."""

    def document(self) -> DocumentNode:
        """A materialized tree for the stored document."""
        raise NotImplementedError

    def resident_bytes(self) -> int:
        """Approximate size of what the store keeps resident."""
        raise NotImplementedError

    kind: str = "base"


class TextStore(BaseStore):
    """Plain text; parses on every access."""

    kind = "text"

    def __init__(self, xml_text: str, base_uri: str = ""):
        self.text = xml_text
        self.base_uri = base_uri

    def document(self) -> DocumentNode:
        return parse_document(self.text, self.base_uri)

    def resident_bytes(self) -> int:
        return len(self.text.encode("utf-8"))


class TreeStore(BaseStore):
    """Materialized tree plus lazily-built element/value indexes."""

    kind = "tree"

    def __init__(self, xml_text: str, base_uri: str = ""):
        self._doc = parse_document(xml_text, base_uri)
        self._element_index: Optional[ElementIndex] = None
        self._value_index: Optional[ValueIndex] = None

    @classmethod
    def from_document(cls, doc: DocumentNode) -> "TreeStore":
        store = cls.__new__(cls)
        store._doc = doc
        store._element_index = None
        store._value_index = None
        return store

    def document(self) -> DocumentNode:
        return self._doc

    @property
    def element_index(self) -> ElementIndex:
        if self._element_index is None:
            self._element_index = ElementIndex(self._doc)
        return self._element_index

    @property
    def value_index(self) -> ValueIndex:
        if self._value_index is None:
            self._value_index = ValueIndex(self._doc)
        return self._value_index

    def resident_bytes(self) -> int:
        # rough object-graph estimate: nodes dominate
        count = sum(1 for _ in self._doc.descendants_or_self())
        return count * 200


class TokenStore(BaseStore):
    """Binary pooled TokenStream; streams tokens without re-parsing text."""

    kind = "tokens"

    def __init__(self, xml_text: str, base_uri: str = "", pooled: bool = True):
        events = parse_events(xml_text, base_uri)
        self.blob = write_binary(tokens_from_events(events), pooled=pooled)
        self.base_uri = base_uri

    def tokens(self) -> Iterator[Token]:
        """Stream the stored tokens (lazy decode)."""
        return read_binary(self.blob)

    def document(self) -> DocumentNode:
        return tree_from_tokens(self.tokens())

    def resident_bytes(self) -> int:
        return len(self.blob)
