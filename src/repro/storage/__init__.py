"""Storage modes and node labeling.

The tutorial's "Possible XML Storage Modes" slide, implemented:

- :class:`TextStore` — plain UNICODE text; must re-parse per query
  ("not an option for XQuery processing" — E8 quantifies why);
- :class:`TreeStore` — materialized XDM trees with indexes ("good
  support of navigation; difficult to use in streaming");
- :class:`TokenStore` — the binary pooled TokenStream on (simulated)
  disk ("low overhead: separate indexes from data");

plus the **(pre, post, level) + Dewey labeling** scheme
(:mod:`repro.storage.labels`) and inverted element/value indexes
(:mod:`repro.storage.indexes`) that the structural-join algorithms of
:mod:`repro.joins` run on.
"""

from repro.storage.labels import DeweyLabel, Label, label_document
from repro.storage.indexes import ElementIndex, Posting, ValueIndex, normalize_value
from repro.storage.stats import DocumentStats, collect_stats
from repro.storage.stores import BaseStore, TextStore, TokenStore, TreeStore

__all__ = [
    "Label",
    "DeweyLabel",
    "label_document",
    "ElementIndex",
    "ValueIndex",
    "Posting",
    "normalize_value",
    "DocumentStats",
    "collect_stats",
    "BaseStore",
    "TextStore",
    "TreeStore",
    "TokenStore",
]
