"""Inverted indexes over labeled documents.

The element index maps a tag name to the document-ordered posting list
of its occurrences — the input streams every structural-join algorithm
consumes.  The value index additionally keys by string value, serving
point lookups like ``//book[price = "55"]`` without a scan.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator

from repro.qname import QName
from repro.storage.labels import Label, label_document
from repro.xdm.nodes import AttributeNode, DocumentNode, ElementNode, Node, TextNode


@dataclass(frozen=True, slots=True)
class Posting:
    """One index entry: a labeled node."""

    label: Label
    node: Node

    @property
    def pre(self) -> int:
        return self.label.pre

    @property
    def post(self) -> int:
        return self.label.post

    @property
    def level(self) -> int:
        return self.label.level


class ElementIndex:
    """name → document-ordered posting list of elements (and attributes).

    Attribute postings are keyed ``@local`` to keep one namespace of
    tag names, matching how the structural-join literature treats
    attributes as leaf partners.
    """

    def __init__(self, doc: DocumentNode):
        self.doc = doc
        self.labels = label_document(doc)
        self._postings: dict[str, list[Posting]] = {}
        self._build(doc)

    def _build(self, doc: DocumentNode) -> None:
        postings = self._postings
        for node in doc.descendants_or_self():
            if isinstance(node, ElementNode):
                postings.setdefault(node.name.local, []).append(
                    Posting(self.labels[id(node)], node))
                for attr in node.attributes:
                    postings.setdefault("@" + attr.name.local, []).append(
                        Posting(self.labels[id(attr)], attr))
        for plist in postings.values():
            plist.sort(key=lambda p: p.label.pre)

    @classmethod
    def from_persisted(cls, doc: DocumentNode, nodes: list[Node],
                       labels: dict[int, Label],
                       ordinal_postings: dict) -> "ElementIndex":
        """Rebuild an index from persisted arrays without any walk.

        ``nodes`` is the deterministic enumeration of ``doc`` (see
        :func:`repro.storage.persist.enumerate_nodes`), ``labels`` the
        decoded label table keyed by node id, and ``ordinal_postings``
        maps each name to its document-ordered node ordinals — already
        sorted on disk, so no rebuild sort happens here.
        """
        index = cls.__new__(cls)
        index.doc = doc
        index.labels = labels
        index._postings = {
            name: [Posting(labels[id(nodes[o])], nodes[o]) for o in ords]
            for name, ords in ordinal_postings.items()}
        return index

    def postings(self, name: str) -> list[Posting]:
        """The document-ordered posting list for a tag (or ``@attr``) name."""
        return self._postings.get(name, [])

    def names(self) -> list[str]:
        return sorted(self._postings)

    def label_of(self, node: Node) -> Label:
        return self.labels[id(node)]

    def cardinality(self, name: str) -> int:
        return len(self._postings.get(name, ()))

    def descendants_in(self, name: str, ancestor: Label) -> list[Posting]:
        """Postings of ``name`` inside the ``ancestor`` interval.

        Binary search on pre bounds — the index-probe primitive used by
        index-nested-loop style plans.
        """
        plist = self._postings.get(name, [])
        lo = bisect_right(plist, ancestor.pre, key=lambda p: p.label.pre)
        out = []
        # pre-order numbers of descendants are contiguous, so the matching
        # postings form one run: stop at the first non-descendant
        for posting in plist[lo:]:
            if not ancestor.is_ancestor_of(posting.label):
                break
            out.append(posting)
        return out


def normalize_value(value: str) -> str:
    """Whitespace-normalize per typed-value atomization: collapse runs
    of whitespace and strip, so ``" 55 "`` and ``"55"`` share one key.

    Probes through the normalized key are a superset of exact string
    equality; callers that need exact semantics (the access-path
    planner's value lookups) re-verify candidates with the original
    predicate.
    """
    return " ".join(value.split())


class ValueIndex:
    """(element name, normalized string value) → nodes, for equality lookups.

    Keys are whitespace-normalized (:func:`normalize_value`) so that
    ``price = 55`` and ``price = "55"`` probes agree with the navigation
    evaluator's typed-value atomization regardless of source formatting.
    """

    def __init__(self, doc: DocumentNode):
        self._by_value: dict[tuple[str, str], list[Node]] = {}
        for node in doc.descendants_or_self():
            if isinstance(node, ElementNode):
                # index only text-only (or empty) elements — value joins
                # are on leaf elements and attributes
                if all(isinstance(c, TextNode) for c in node.children):
                    key = (node.name.local, normalize_value(node.string_value))
                    self._by_value.setdefault(key, []).append(node)
                for attr in node.attributes:
                    key = ("@" + attr.name.local, normalize_value(attr.value))
                    self._by_value.setdefault(key, []).append(attr)

    @classmethod
    def from_persisted(cls, nodes: list[Node],
                       ordinal_entries: dict) -> "ValueIndex":
        """Rebuild from persisted ``(name, value) → node ordinals``
        (values were normalized before persisting)."""
        index = cls.__new__(cls)
        index._by_value = {key: [nodes[o] for o in ords]
                           for key, ords in ordinal_entries.items()}
        return index

    def lookup(self, name: str, value: str) -> list[Node]:
        return self._by_value.get((name, normalize_value(value)), [])

    def keys(self) -> Iterator[tuple[str, str]]:
        return iter(self._by_value)

    def entries(self) -> Iterator[tuple[tuple[str, str], list[Node]]]:
        """Every ``((name, normalized value), nodes)`` pair — the
        persistence layer serializes the index through this."""
        return iter(self._by_value.items())
