"""Per-document statistics collected at store-ingest time.

One walk over the tree yields everything the access-path and twig-join
planners need to estimate costs without touching the document again:
element and attribute cardinalities, distinct-value counts for
indexable names, fan-out, two safety bits (``has_namespaces``, per-name
leaf purity) that gate index eligibility, and the *pair statistics*
the pattern-level join cost model prices structural edges with:

- ``child_pairs[(p, c)]`` — exact count of direct parent–child element
  pairs with tags ``p`` above ``c`` (the output of a parent–child
  structural join on the full posting lists);
- ``desc_pairs[(a, d)]`` — exact count of ancestor–descendant element
  pairs (the output of an unconstrained A-D structural join; with
  self-nesting tags this exceeds the element counts);
- ``parents_with_child[(p, c)]`` / ``parents_with_desc[(a, d)]`` —
  distinct parents (ancestors) with at least one matching child
  (descendant): the semi-join cardinalities that per-edge selectivity
  is derived from.

All four are exact, not sampled, so a planner estimate of a single
edge is the true join cardinality; only multi-edge correlations are
approximated (independence assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xdm.nodes import DocumentNode, ElementNode, TextNode


@dataclass(slots=True)
class DocumentStats:
    """Summary statistics for one stored document."""

    total_nodes: int = 0
    total_elements: int = 0
    max_depth: int = 0
    max_fanout: int = 0
    has_namespaces: bool = False
    #: tag of the document's root element ("" before collection)
    root_name: str = ""
    # tag name (or "@attr") → number of occurrences
    element_counts: dict[str, int] = field(default_factory=dict)
    # name → number of occurrences carrying an indexable value
    # (text-only/empty elements; every attribute)
    value_counts: dict[str, int] = field(default_factory=dict)
    # name → number of distinct indexable values
    distinct_values: dict[str, int] = field(default_factory=dict)
    # element names where *every* occurrence is text-only or empty —
    # only these are safe targets for value-index point lookups
    leaf_only_names: frozenset[str] = frozenset()
    # (parent tag, child tag) → direct pair count / distinct parents
    child_pairs: dict[tuple[str, str], int] = field(default_factory=dict)
    parents_with_child: dict[tuple[str, str], int] = field(default_factory=dict)
    # (ancestor tag, descendant tag) → A-D pair count / distinct ancestors
    desc_pairs: dict[tuple[str, str], int] = field(default_factory=dict)
    parents_with_desc: dict[tuple[str, str], int] = field(default_factory=dict)

    def count(self, name: str) -> int:
        """Occurrences of a tag (or ``@attr``) name; 0 when absent."""
        return self.element_counts.get(name, 0)

    def estimated_matches(self, name: str) -> int:
        """Expected rows for an equality probe on ``name`` under a
        uniform-value assumption: occurrences / distinct values."""
        occurrences = self.value_counts.get(name, 0)
        distinct = self.distinct_values.get(name, 0)
        if not occurrences or not distinct:
            return 0
        return max(1, occurrences // distinct)

    def is_leaf_only(self, name: str) -> bool:
        """True when every element with this name is text-only/empty
        (attributes, keyed ``@name``, are always leaves)."""
        return name.startswith("@") or name in self.leaf_only_names

    # -- edge statistics (the twig cost model's inputs) --------------------

    def edge_pairs(self, parent: str, child: str, kind: str) -> int:
        """Exact join cardinality of one structural edge.

        ``kind`` is ``"child"`` or ``"descendant"`` — the number of
        (parent, child) element pairs a structural join over the full
        posting lists of the two tags would produce.
        """
        table = self.child_pairs if kind == "child" else self.desc_pairs
        return table.get((parent, child), 0)

    def edge_parents(self, parent: str, child: str, kind: str) -> int:
        """Distinct parents (ancestors) with ≥ 1 matching child
        (descendant) — the semi-join cardinality of one edge."""
        table = self.parents_with_child if kind == "child" \
            else self.parents_with_desc
        return table.get((parent, child), 0)

    def to_dict(self) -> dict:
        return {
            "total_nodes": self.total_nodes,
            "total_elements": self.total_elements,
            "max_depth": self.max_depth,
            "max_fanout": self.max_fanout,
            "has_namespaces": self.has_namespaces,
            "root_name": self.root_name,
            "element_counts": dict(self.element_counts),
            "value_counts": dict(self.value_counts),
            "distinct_values": dict(self.distinct_values),
            "leaf_only_names": sorted(self.leaf_only_names),
            "child_pairs": {f"{p}/{c}": n
                            for (p, c), n in sorted(self.child_pairs.items())},
            "desc_pairs": {f"{a}//{d}": n
                           for (a, d), n in sorted(self.desc_pairs.items())},
            "parents_with_child": {
                f"{p}/{c}": n
                for (p, c), n in sorted(self.parents_with_child.items())},
            "parents_with_desc": {
                f"{a}//{d}": n
                for (a, d), n in sorted(self.parents_with_desc.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DocumentStats":
        """Rebuild from :meth:`to_dict` output (the persisted ``STAT``
        segment section) — the planner costs a reopened catalog's
        documents from this, without touching any tree."""
        def pairs(table: dict, sep: str) -> dict[tuple[str, str], int]:
            # NCNames cannot contain "/", so the separator is unambiguous
            out = {}
            for key, n in table.items():
                left, _, right = key.partition(sep)
                out[(left, right)] = n
            return out

        return cls(
            total_nodes=data["total_nodes"],
            total_elements=data["total_elements"],
            max_depth=data["max_depth"],
            max_fanout=data["max_fanout"],
            has_namespaces=data["has_namespaces"],
            root_name=data["root_name"],
            element_counts=dict(data["element_counts"]),
            value_counts=dict(data["value_counts"]),
            distinct_values=dict(data["distinct_values"]),
            leaf_only_names=frozenset(data["leaf_only_names"]),
            child_pairs=pairs(data["child_pairs"], "/"),
            parents_with_child=pairs(data["parents_with_child"], "/"),
            desc_pairs=pairs(data["desc_pairs"], "//"),
            parents_with_desc=pairs(data["parents_with_desc"], "//"),
        )


def collect_stats(doc: DocumentNode) -> DocumentStats:
    """Collect :class:`DocumentStats` in a single pre-order walk.

    The walk pushes explicit *exit* frames so ancestor context (tag
    multiset on the current path, descendant tag sets per open element)
    can be maintained incrementally: pair statistics cost
    O(nodes × distinct tags on / below the path), which stays linear-ish
    for real documents (XMark has ~80 tags, depth ~12).
    """
    stats = DocumentStats()
    counts = stats.element_counts
    value_counts = stats.value_counts
    child_pairs = stats.child_pairs
    desc_pairs = stats.desc_pairs
    parents_with_child = stats.parents_with_child
    parents_with_desc = stats.parents_with_desc
    distinct: dict[str, set[str]] = {}
    non_leaf: set[str] = set()
    seen_names: set[str] = set()
    #: tag → number of open ancestors with that tag
    anc_counts: dict[str, int] = {}
    #: per open element: its tag, the set of descendant tags seen below
    #: it so far, and its direct-child tags (distinct-parent counters)
    open_tags: list[str] = []
    desc_seen: list[set[str]] = []
    child_seen: list[set[str]] = []

    _ENTER, _EXIT = 0, 1
    # (op, node, depth | name) stack; DocumentNode is depth 0
    stack: list[tuple[int, object, object]] = [(_ENTER, doc, 0)]
    while stack:
        op, node, extra = stack.pop()
        if op == _EXIT:
            name = extra
            anc_counts[name] -= 1
            open_tags.pop()
            below = desc_seen.pop()
            direct = child_seen.pop()
            for tag in below:
                parents_with_desc[(name, tag)] = \
                    parents_with_desc.get((name, tag), 0) + 1
            for tag in direct:
                parents_with_child[(name, tag)] = \
                    parents_with_child.get((name, tag), 0) + 1
            if desc_seen:
                desc_seen[-1].update(below)
                desc_seen[-1].add(name)
            continue
        depth = extra
        stats.total_nodes += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        if isinstance(node, ElementNode):
            stats.total_elements += 1
            name = node.name.local
            if not stats.root_name:
                stats.root_name = name
            if node.name.uri:
                stats.has_namespaces = True
            seen_names.add(name)
            counts[name] = counts.get(name, 0) + 1
            # pair statistics against every open ancestor / the parent
            for anc, n_open in anc_counts.items():
                if n_open:
                    desc_pairs[(anc, name)] = \
                        desc_pairs.get((anc, name), 0) + n_open
            if open_tags:
                parent_tag = open_tags[-1]
                child_pairs[(parent_tag, name)] = \
                    child_pairs.get((parent_tag, name), 0) + 1
                child_seen[-1].add(name)
            children = node.children
            if len(children) > stats.max_fanout:
                stats.max_fanout = len(children)
            if all(isinstance(c, TextNode) for c in children):
                value_counts[name] = value_counts.get(name, 0) + 1
                distinct.setdefault(name, set()).add(node.string_value)
            else:
                non_leaf.add(name)
            for attr in node.attributes:
                akey = "@" + attr.name.local
                if attr.name.uri:
                    stats.has_namespaces = True
                stats.total_nodes += 1
                counts[akey] = counts.get(akey, 0) + 1
                value_counts[akey] = value_counts.get(akey, 0) + 1
                distinct.setdefault(akey, set()).add(attr.value)
            # open this element: exit frame first (LIFO), then children
            anc_counts[name] = anc_counts.get(name, 0) + 1
            open_tags.append(name)
            desc_seen.append(set())
            child_seen.append(set())
            stack.append((_EXIT, None, name))
            for child in reversed(children):
                stack.append((_ENTER, child, depth + 1))
        else:
            children = getattr(node, "children", None)
            if children:
                for child in reversed(children):
                    stack.append((_ENTER, child, depth + 1))

    stats.distinct_values = {name: len(vals) for name, vals in distinct.items()}
    stats.leaf_only_names = frozenset(seen_names - non_leaf)
    return stats
