"""Per-document statistics collected at store-ingest time.

One walk over the tree yields everything the access-path planner needs
to estimate costs without touching the document again: element and
attribute cardinalities, distinct-value counts for indexable names,
fan-out, and two safety bits (``has_namespaces``, per-name leaf purity)
that gate index eligibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xdm.nodes import DocumentNode, ElementNode, TextNode


@dataclass(slots=True)
class DocumentStats:
    """Summary statistics for one stored document."""

    total_nodes: int = 0
    total_elements: int = 0
    max_depth: int = 0
    max_fanout: int = 0
    has_namespaces: bool = False
    # tag name (or "@attr") → number of occurrences
    element_counts: dict[str, int] = field(default_factory=dict)
    # name → number of occurrences carrying an indexable value
    # (text-only/empty elements; every attribute)
    value_counts: dict[str, int] = field(default_factory=dict)
    # name → number of distinct indexable values
    distinct_values: dict[str, int] = field(default_factory=dict)
    # element names where *every* occurrence is text-only or empty —
    # only these are safe targets for value-index point lookups
    leaf_only_names: frozenset[str] = frozenset()

    def count(self, name: str) -> int:
        """Occurrences of a tag (or ``@attr``) name; 0 when absent."""
        return self.element_counts.get(name, 0)

    def estimated_matches(self, name: str) -> int:
        """Expected rows for an equality probe on ``name`` under a
        uniform-value assumption: occurrences / distinct values."""
        occurrences = self.value_counts.get(name, 0)
        distinct = self.distinct_values.get(name, 0)
        if not occurrences or not distinct:
            return 0
        return max(1, occurrences // distinct)

    def is_leaf_only(self, name: str) -> bool:
        """True when every element with this name is text-only/empty
        (attributes, keyed ``@name``, are always leaves)."""
        return name.startswith("@") or name in self.leaf_only_names

    def to_dict(self) -> dict:
        return {
            "total_nodes": self.total_nodes,
            "total_elements": self.total_elements,
            "max_depth": self.max_depth,
            "max_fanout": self.max_fanout,
            "has_namespaces": self.has_namespaces,
            "element_counts": dict(self.element_counts),
            "value_counts": dict(self.value_counts),
            "distinct_values": dict(self.distinct_values),
            "leaf_only_names": sorted(self.leaf_only_names),
        }


def collect_stats(doc: DocumentNode) -> DocumentStats:
    """Collect :class:`DocumentStats` in a single pre-order walk."""
    stats = DocumentStats()
    counts = stats.element_counts
    value_counts = stats.value_counts
    distinct: dict[str, set[str]] = {}
    non_leaf: set[str] = set()
    seen_names: set[str] = set()

    # (node, depth) stack; DocumentNode is depth 0
    stack: list[tuple[object, int]] = [(doc, 0)]
    while stack:
        node, depth = stack.pop()
        stats.total_nodes += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        if isinstance(node, ElementNode):
            stats.total_elements += 1
            name = node.name.local
            if node.name.uri:
                stats.has_namespaces = True
            seen_names.add(name)
            counts[name] = counts.get(name, 0) + 1
            children = node.children
            if len(children) > stats.max_fanout:
                stats.max_fanout = len(children)
            if all(isinstance(c, TextNode) for c in children):
                value_counts[name] = value_counts.get(name, 0) + 1
                distinct.setdefault(name, set()).add(node.string_value)
            else:
                non_leaf.add(name)
            for attr in node.attributes:
                akey = "@" + attr.name.local
                if attr.name.uri:
                    stats.has_namespaces = True
                stats.total_nodes += 1
                counts[akey] = counts.get(akey, 0) + 1
                value_counts[akey] = value_counts.get(akey, 0) + 1
                distinct.setdefault(akey, set()).add(attr.value)
            for child in reversed(children):
                stack.append((child, depth + 1))
        else:
            children = getattr(node, "children", None)
            if children:
                for child in reversed(children):
                    stack.append((child, depth + 1))

    stats.distinct_values = {name: len(vals) for name, vals in distinct.items()}
    stats.leaf_only_names = frozenset(seen_names - non_leaf)
    return stats
