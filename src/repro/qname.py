"""Qualified names and namespace machinery.

XML names are pairs ``(namespace-uri, local-name)``; the prefix used in
the source document is lexical sugar resolved against in-scope
namespace bindings.  The paper's data model slides stress that
``name(book element) = {www.amazon.com}:book`` — i.e. names compare by
URI + local part, never by prefix.  We keep the prefix around purely
for serialization and error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Well-known namespace URIs.
XS_NS = "http://www.w3.org/2001/XMLSchema"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
XDT_NS = "http://www.w3.org/2003/11/xpath-datatypes"
FN_NS = "http://www.w3.org/2003/11/xpath-functions"
ERR_NS = "http://www.w3.org/2004/07/xqt-errors"
XML_NS = "http://www.w3.org/XML/1998/namespace"
XMLNS_NS = "http://www.w3.org/2000/xmlns/"
LOCAL_NS = "http://www.w3.org/2003/11/xquery-local-functions"


@dataclass(frozen=True, slots=True)
class QName:
    """An expanded XML name: ``(uri, local)`` with an advisory prefix.

    Equality and hashing ignore the prefix, matching XDM semantics.
    """

    uri: str
    local: str
    prefix: str = field(default="", compare=False)

    def __str__(self) -> str:
        if self.prefix:
            return f"{self.prefix}:{self.local}"
        if self.uri:
            return f"{{{self.uri}}}{self.local}"
        return self.local

    @property
    def clark(self) -> str:
        """Clark notation ``{uri}local`` (unambiguous, prefix-free)."""
        return f"{{{self.uri}}}{self.local}" if self.uri else self.local

    def with_prefix(self, prefix: str) -> "QName":
        """A copy of this name carrying ``prefix`` (equality unchanged)."""
        return QName(self.uri, self.local, prefix)

    @staticmethod
    def parse(lexical: str, resolver: "NamespaceBindings | None" = None,
              default_uri: str = "") -> "QName":
        """Resolve a lexical QName (``pfx:local`` or ``local``).

        ``resolver`` supplies prefix → URI bindings; unprefixed names get
        ``default_uri`` (the default *element* namespace — attributes
        pass ``""``).
        """
        if ":" in lexical:
            prefix, local = lexical.split(":", 1)
            if resolver is None:
                raise LookupError(f"no namespace resolver for prefix '{prefix}'")
            uri = resolver.lookup(prefix)
            if uri is None:
                raise LookupError(f"undeclared namespace prefix '{prefix}'")
            return QName(uri, local, prefix)
        return QName(default_uri, lexical, "")


def xs(local: str) -> QName:
    """Shorthand for a name in the XML Schema namespace."""
    return QName(XS_NS, local, "xs")


def xdt(local: str) -> QName:
    """Shorthand for a name in the XPath datatypes namespace."""
    return QName(XDT_NS, local, "xdt")


def fn(local: str) -> QName:
    """Shorthand for a name in the standard function namespace."""
    return QName(FN_NS, local, "fn")


#: shared scope object for elements that declare no namespaces
_EMPTY_SCOPE: dict[str, str] = {}


class NamespaceBindings:
    """A chain-of-scopes prefix → URI mapping.

    Element constructors in XQuery open *nested scopes* (a point the
    paper emphasises because it blocks naive LET folding); this class
    models exactly that: ``push()`` opens a scope, ``pop()`` closes it,
    and lookups walk outward.
    """

    __slots__ = ("_scopes",)

    def __init__(self, initial: dict[str, str] | None = None):
        base = {"xml": XML_NS, "xs": XS_NS, "xsi": XSI_NS,
                "xdt": XDT_NS, "fn": FN_NS, "local": LOCAL_NS}
        if initial:
            base.update(initial)
        self._scopes: list[dict[str, str]] = [base]

    def push(self, bindings: dict[str, str] | None = None) -> None:
        """Open a nested namespace scope with optional initial bindings."""
        self._scopes.append(dict(bindings) if bindings else {})

    def push_empty(self) -> None:
        """Open a scope known to stay empty (no allocation).

        The fast-path scanner opens one scope per element to mirror the
        reference parser's balance invariants; elements without
        ``xmlns`` attributes share one immutable empty dict instead of
        allocating a fresh one each.  Callers must not ``bind`` into a
        scope opened this way.
        """
        self._scopes.append(_EMPTY_SCOPE)

    def pop(self) -> None:
        """Close the innermost scope (the outermost cannot be popped)."""
        if len(self._scopes) == 1:
            raise IndexError("cannot pop the outermost namespace scope")
        self._scopes.pop()

    def bind(self, prefix: str, uri: str) -> None:
        """Bind ``prefix`` to ``uri`` in the current scope."""
        self._scopes[-1][prefix] = uri

    def lookup(self, prefix: str) -> str | None:
        """The URI bound to ``prefix``, searching inner scopes first."""
        for scope in reversed(self._scopes):
            if prefix in scope:
                return scope[prefix]
        return None

    def lookup_prefix(self, uri: str) -> str | None:
        """Find some in-scope prefix bound to ``uri`` (for serialization)."""
        for scope in reversed(self._scopes):
            for prefix, bound in scope.items():
                if bound == uri:
                    return prefix
        return None

    def in_scope(self) -> dict[str, str]:
        """Flatten the scope chain into a single mapping."""
        flat: dict[str, str] = {}
        for scope in self._scopes:
            flat.update(scope)
        return flat

    def copy(self) -> "NamespaceBindings":
        """An independent deep copy of the scope chain."""
        clone = NamespaceBindings.__new__(NamespaceBindings)
        clone._scopes = [dict(s) for s in self._scopes]
        return clone


def is_ncname(text: str) -> bool:
    """True if ``text`` is a valid NCName (no-colon XML name).

    We accept the pragmatic subset: a letter or underscore followed by
    letters, digits, hyphens, underscores, and dots.  Full XML 1.0
    character classes include many Unicode ranges; ``str.isalpha``
    covers them for our purposes.
    """
    if not text:
        return False
    first = text[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(c.isalnum() or c in "_-." for c in text[1:])
