"""Cost-based access-path selection.

Runs after the rewrite engine when the engine carries a
:class:`~repro.catalog.DocumentCatalog`.  Eligible path chains rooted
at a catalog-bound variable —

    $doc//book                      (element-index scan)
    $doc/site/people/person[emailaddress = "x"]   (value-index lookup)

— are replaced by :class:`~repro.xquery.ast.AccessPath` operators that
run on the stored document's posting lists instead of navigating the
tree.  The planner chooses among three physical access paths by
estimated cost from the store's :class:`~repro.storage.stats.
DocumentStats`:

- **navigation** (the unmodified expression): cost ≈ ``total_nodes``
  (every step chain scans the subtree under its context);
- **element-index scan**: one stack-tree merge per step, cost ≈ the
  sum of the step names' posting-list lengths (+ one residual
  predicate evaluation per output candidate);
- **value-index point lookup**: cost ≈ the estimated matches of the
  equality probe (occurrences / distinct values) times the chain
  verification depth.

Eligibility (anything else keeps navigation untouched):

- the chain root is a variable bound in the catalog to an *indexed*
  document, and no default element namespace is in force;
- every step is ``child::name`` or ``descendant::name`` with a simple
  no-namespace name test (``descendant-or-self::node()/child::name``
  pairs count as one descendant step), and the document itself has no
  namespaced nodes (posting lists key local names only);
- at most one predicate, on the last step, of the form
  ``name = literal`` / ``@name = literal`` (either operand order);
- the value-index path additionally requires a *string* literal (a
  numeric probe like ``price = 55`` must match ``"55.0"`` by numeric
  promotion, which a string-keyed index cannot answer) and a predicate
  name whose element occurrences are all text-only leaves.

Index results are re-verified: value probes run through whitespace-
normalized keys (a superset of exact equality), so every candidate
passes through the *original* predicate before being emitted — the
compiled access path is result-identical to navigation by
construction, and falls back to it at runtime when the bound value is
not the indexed document the plan was costed for.

Pattern-level twig planning
---------------------------

Chains whose steps carry *structural* predicates (pure path existence,
``$doc//book[.//year]/title``) decompose into twig patterns
(:mod:`repro.joins.patterns`) instead.  :func:`choose_twig_strategy`
prices the four physical twig plans from the same ingest statistics,
now extended with exact per-edge pair counts:

- **holistic** (TwigStack): every posting list scanned once —
  ``Σ count(n)`` — times a small coordination factor for the
  per-advance ``getNext`` machinery E6 measured;
- **binary**: one stack-tree join per edge in evaluation order; the
  alist re-scans the junction's surviving bindings and intermediate
  row materialization is charged as a blow-up penalty (the failure
  mode E6 showed on skewed twigs);
- **mixed**: side branches reduced to semi-join filters (binary
  bottom-up, or holistic for branches where a TwigStack sub-pass is
  cheaper), then a binary cascade down the filtered output chain;
- **navigation**: the walking baseline, ``total_nodes`` plus the
  per-candidate subtree visits the pair counts bound.

Per-edge selectivity comes from ``DocumentStats.edge_pairs`` /
``edge_parents`` — *exact* single-edge join cardinalities, so a zero
estimate proves the result empty and ``est_rows`` is only 0 for
provably-empty patterns.  On near-ties (within :data:`_TWIG_TIE`) the
cheaper-constant plan wins: binary > mixed > holistic > navigation.
All four plans are result-identical over posting lists by
construction; the runtime re-verifies the binding is the indexed
document the plan was costed for (same fallback seam as AccessPath).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.joins.patterns import (
    ALGORITHM_ALIASES,
    TwigNode,
    TwigPattern,
    _root_to_output,
)
from repro.xquery import ast
from repro.xsd import types as T

#: fixed per-candidate overhead of the upward chain verification
_VERIFY_FACTOR = 2
#: an index path must beat navigation by this margin to be worth the
#: runtime binding check and posting-list machinery
_MARGIN = 0.75
#: holistic coordination overhead per scanned element: TwigStack pays a
#: recursive getNext per advance, so its scan estimate is inflated a
#: little — enough for cheaper-machinery plans to win genuine ties
#: without ever overrunning the 1.25x scan-cost acceptance margin
_TWIG_HOL_FACTOR = 1.15
#: near-tie window: an earlier-preference strategy is chosen when its
#: estimated cost is within this factor of the cheapest estimate
_TWIG_TIE = 1.05
#: λ — cost charged per estimated intermediate row the binary plan
#: materializes (rows carried into subsequent joins)
_TWIG_BLOWUP = 1.0
#: tie-break preference on near-equal estimates (cheapest machinery
#: first; navigation last — it never touches the posting lists)
_TWIG_PREFERENCE = ("binary", "mixed", "twigstack", "navigation")


def plan_access_paths(expr: ast.Expr, static_ctx, catalog,
                      twig_strategy: str = "auto") -> ast.Expr:
    """Rewrite eligible chains in ``expr`` into AccessPath or TwigJoin
    operators.  ``twig_strategy`` forces the physical twig plan
    (``"auto"`` | ``"holistic"`` | ``"binary"`` | ``"navigation"`` |
    ``"mixed"``); ``"auto"`` asks :func:`choose_twig_strategy`."""
    if catalog is None or len(catalog) == 0:
        return expr
    if static_ctx is not None and getattr(static_ctx, "default_element_ns", ""):
        # step names would resolve into a namespace; posting lists
        # key local names — never eligible
        return expr

    def visit(node: ast.Expr) -> ast.Expr:
        replaced = _try_rewrite_twig(node, catalog, twig_strategy)
        if replaced is None:
            replaced = _try_rewrite(node, catalog)
        if replaced is not None:
            return replaced
        return node.with_children(visit)

    return visit(expr)


def _try_rewrite(expr: ast.Expr, catalog) -> Optional[ast.AccessPath]:
    decomposed = _decompose(expr)
    if decomposed is None:
        return None
    var, steps, pred_parts = decomposed

    if var.name.uri:
        return None
    stored = catalog.get(var.name.local)
    if stored is None or not stored.indexed:
        return None
    stats = stored.stats
    if stats.has_namespaces:
        return None

    pred = None
    predicate_expr = None
    probe = None
    pred_key = None
    if pred_parts is not None:
        pred_kind, pred_name, literal, predicate_expr = pred_parts
        pred_key = "@" + pred_name if pred_kind == "attribute" else pred_name
        if literal.value.type.derives_from(T.XS_STRING):
            probe = str(literal.value.value)
        elif T.is_numeric(literal.value.type):
            probe = None  # element-scan only; residual does the compare
        else:
            return None
        pred = (pred_kind, pred_name, probe)

    out_name = steps[-1][1]
    nav_cost = max(1, stats.total_nodes)

    candidates: list[tuple[float, str, int]] = []

    # element-index scan: merge the chain's posting lists
    elem_cost = sum(stats.count(name) for _, name in steps)
    est_rows = stats.count(out_name)
    if pred is not None:
        elem_cost += est_rows  # one residual predicate check per candidate
        est_rows = min(est_rows, max(1, stats.estimated_matches(pred_key))) \
            if stats.value_counts.get(pred_key) else est_rows
    candidates.append((float(max(1, elem_cost)), "element_index", est_rows))

    # value-index point lookup: probe, then verify each owner's chain
    if probe is not None and stats.is_leaf_only(pred_key) \
            and stats.value_counts.get(pred_key):
        matches = stats.estimated_matches(pred_key)
        value_cost = max(1, matches) * (len(steps) + _VERIFY_FACTOR)
        candidates.append((float(value_cost), "value_index", max(1, matches)))

    cost, chosen, rows = min(candidates)
    if cost >= nav_cost * _MARGIN:
        return None

    node = ast.AccessPath(var.name, tuple(steps), pred, chosen, rows,
                          predicate_expr, expr, pos=expr.pos)
    node.annotations.update({
        "creates_nodes": False,
        "can_raise": True,       # unbound variable, cancellation
        "uses_focus": False,
        "doc_ordered": True,
        "distinct": True,
        "disjoint": False,
        "access_path.chosen": chosen,
        "access_path.est_rows": rows,
    })
    return node


def _decompose(expr: ast.Expr):
    """Match ``DDO(PathExpr(... VarRef ...))`` chains.

    Returns ``(var, steps, pred_parts)`` where ``steps`` is the
    root-to-output ``(edge, name)`` list and ``pred_parts`` is None or
    ``(kind, name, literal, comparison)`` for a final-step equality
    predicate; None when the shape is ineligible.
    """
    if not isinstance(expr, ast.DDO):
        return None
    node = expr.operand
    rights: list[ast.Expr] = []
    while True:
        if isinstance(node, ast.DDO):
            node = node.operand
        elif isinstance(node, ast.PathExpr):
            rights.append(node.right)
            node = node.left
        else:
            break
    if not isinstance(node, ast.VarRef) or not rights:
        return None
    var = node
    rights.reverse()

    steps: list[tuple[str, str]] = []
    pred_parts = None
    pending_descendant = False
    last_index = len(rights) - 1
    for i, right in enumerate(rights):
        if isinstance(right, ast.Filter):
            if i != last_index:
                return None
            pred_parts = _match_predicate(right.predicate)
            if pred_parts is None:
                return None
            right = right.base
        if not isinstance(right, ast.Step):
            return None
        if _is_dos_node(right):
            if pending_descendant or i == last_index:
                return None
            pending_descendant = True
            continue
        name = _simple_element_name(right)
        if name is None:
            return None
        if pending_descendant:
            if right.axis != "child":
                return None
            steps.append(("descendant", name))
            pending_descendant = False
        else:
            steps.append((right.axis, name))
    if pending_descendant or not steps:
        return None
    return var, steps, pred_parts


def _is_dos_node(step: ast.Step) -> bool:
    return (step.axis == "descendant-or-self" and step.test.kind == "node"
            and step.test.name is None and step.test.type_name is None)


def _simple_element_name(step: ast.Step) -> Optional[str]:
    if step.axis not in ("child", "descendant"):
        return None
    test = step.test
    if test.kind != "element" or test.name is None or test.type_name is not None:
        return None
    if test.name.uri or test.name.local in ("*", ""):
        return None
    return test.name.local


def _match_predicate(pred: ast.Expr):
    """``name = literal`` / ``@name = literal`` (general comparison)."""
    if not isinstance(pred, ast.Comparison) or pred.family != "general" \
            or pred.op != "=":
        return None
    for lhs, rhs in ((pred.left, pred.right), (pred.right, pred.left)):
        if not isinstance(rhs, ast.Literal) or not isinstance(lhs, ast.Step):
            continue
        test = lhs.test
        if test.type_name is not None or test.name is None \
                or test.name.uri or test.name.local in ("*", ""):
            continue
        if lhs.axis == "child" and test.kind == "element":
            return ("child", test.name.local, rhs, pred)
        if lhs.axis == "attribute" and test.kind == "attribute":
            return ("attribute", test.name.local, rhs, pred)
    return None


# ---------------------------------------------------------------------------
# Pattern-level twig planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TwigChoice:
    """The cost model's verdict for one twig pattern.

    ``algorithm`` is the internal plan name (``twigstack`` | ``binary``
    | ``navigation`` | ``mixed``); ``est_rows`` the estimated output
    cardinality (0 only when the result is provably empty — every
    single-edge estimate is exact); ``edge_ests`` the per-edge
    estimated join pairs as ``(parent, kind, child, est_pairs)``;
    ``costs`` the per-strategy scan-cost estimates the choice compared;
    ``holistic_branches`` the side branches a mixed plan filters
    holistically.
    """

    algorithm: str
    est_rows: int
    edge_ests: tuple[tuple[str, str, str, int], ...]
    costs: dict[str, float] = field(compare=False)
    holistic_branches: tuple[str, ...] = ()


def choose_twig_strategy(stats, pattern: TwigPattern,
                         force: Optional[str] = None) -> TwigChoice:
    """Price the four physical twig plans against ``stats`` and pick.

    ``force`` pins the returned algorithm (internal name) while still
    computing estimates — the engine's ``twig_strategy`` override uses
    it so EXPLAIN keeps showing the model's numbers.
    """
    nodes = list(pattern.nodes())
    edges = pattern.edges()
    counts = {n.name: stats.count(n.name) for n in nodes}
    raw_pairs: dict[tuple[str, str], int] = {}
    provably_empty = any(c == 0 for c in counts.values())
    for parent, kind, child in edges:
        pairs = stats.edge_pairs(parent, child, kind)
        raw_pairs[(parent, child)] = pairs
        if pairs == 0:
            provably_empty = True

    # -- survival fractions (independence assumption across edges) -----
    down: dict[str, float] = {}

    def visit_down(node: TwigNode) -> None:
        frac = 1.0
        cnt = counts[node.name]
        for edge in node.children:
            visit_down(edge.child)
            if cnt == 0:
                frac = 0.0
                continue
            p_has = stats.edge_parents(node.name, edge.child.name,
                                       edge.kind) / cnt
            frac *= min(1.0, p_has * down[edge.child.name])
        down[node.name] = frac

    visit_down(pattern.root)

    chain = _root_to_output(pattern)
    chain_next = {chain[i][0].name: chain[i + 1][0].name
                  for i in range(len(chain) - 1)}
    # per chain node: survival from side branches only (the chain edge
    # itself is priced by the cascade, not the node filter)
    down_side: dict[str, float] = {}
    for qnode, _kind in chain:
        nxt = chain_next.get(qnode.name)
        frac = 1.0
        cnt = counts[qnode.name]
        for edge in qnode.children:
            if edge.child.name == nxt:
                continue
            if cnt == 0:
                frac = 0.0
                continue
            p_has = stats.edge_parents(qnode.name, edge.child.name,
                                       edge.kind) / cnt
            frac *= min(1.0, p_has * down[edge.child.name])
        down_side[qnode.name] = frac

    # ancestor-chain survival of the output node
    anc = 1.0
    for i in range(1, len(chain)):
        pq = chain[i - 1][0]
        cq = chain[i][0]
        cc = counts[cq.name]
        p_above = min(1.0, raw_pairs[(pq.name, cq.name)] / cc) if cc else 0.0
        anc = min(1.0, p_above * anc * down_side[pq.name])

    out_name = pattern.output.name
    if provably_empty:
        est_rows = 0
    else:
        est_rows = max(1, round(counts[out_name] * down[out_name] * anc))

    edge_ests = tuple((parent, kind, child, raw_pairs[(parent, child)])
                      for parent, kind, child in edges)

    # -- per-strategy scan-cost estimates ------------------------------
    total_list = sum(counts.values())
    costs: dict[str, float] = {}
    costs["twigstack"] = _TWIG_HOL_FACTOR * max(1, total_list)
    costs["navigation"] = float(
        max(1, stats.total_nodes) + 2 * sum(raw_pairs.values()))

    # binary: stack-tree join per edge in the plan's evaluation order
    bin_scan = 0.0
    intermediates: list[float] = []
    est_distinct = {pattern.root.name: float(counts[pattern.root.name])}

    def visit_bin(node: TwigNode) -> None:
        nonlocal bin_scan
        for edge in node.children:
            cnt = counts[node.name]
            alist = est_distinct[node.name]
            frac = alist / cnt if cnt else 0.0
            pairs_est = raw_pairs[(node.name, edge.child.name)] * frac
            bin_scan += alist + counts[edge.child.name]
            intermediates.append(pairs_est)
            est_distinct[edge.child.name] = min(
                float(counts[edge.child.name]), pairs_est)
            visit_bin(edge.child)

    visit_bin(pattern.root)
    # rows materialized after the final join are the output, not a
    # blow-up — only rows carried into subsequent joins are charged
    blowup = sum(intermediates[:-1]) if len(intermediates) > 1 else 0.0
    costs["binary"] = max(1.0, bin_scan + _TWIG_BLOWUP * blowup)

    # mixed: per-branch min(binary semi-join, holistic sub-pass), then
    # the binary cascade over the filtered chain lists
    mix_cost = 0.0
    holistic_branches: list[str] = []
    filt: list[float] = []
    for qnode, _kind in chain:
        nxt = chain_next.get(qnode.name)
        for edge in qnode.children:
            if edge.child.name == nxt:
                continue
            branch_edges = _subtree_edges(edge.child)
            semi = counts[qnode.name] + counts[edge.child.name] + sum(
                counts[p] + counts[c] for p, _k, c in branch_edges)
            hol = _TWIG_HOL_FACTOR * (
                counts[qnode.name] + counts[edge.child.name] + sum(
                    counts[c] for _p, _k, c in branch_edges))
            if hol < semi:
                holistic_branches.append(edge.child.name)
                mix_cost += hol
            else:
                mix_cost += semi
        filt.append(counts[qnode.name] * down_side[qnode.name])
    surv = filt[0]
    for i in range(1, len(chain)):
        pq = chain[i - 1][0]
        mix_cost += surv + filt[i]
        cnt = counts[pq.name]
        frac = surv / cnt if cnt else 0.0
        surv = min(filt[i], raw_pairs[(pq.name, chain[i][0].name)] * frac)
    costs["mixed"] = max(1.0, mix_cost)

    if force is not None:
        chosen = force
    else:
        best = min(costs.values())
        chosen = next(name for name in _TWIG_PREFERENCE
                      if costs[name] <= _TWIG_TIE * best)
    return TwigChoice(chosen, est_rows, edge_ests, costs,
                      tuple(holistic_branches) if chosen == "mixed" else ())


def _subtree_edges(node: TwigNode) -> list[tuple[str, str, str]]:
    out: list[tuple[str, str, str]] = []
    stack = [node]
    while stack:
        current = stack.pop()
        for edge in current.children:
            out.append((current.name, edge.kind, edge.child.name))
            stack.append(edge.child)
    return out


def _try_rewrite_twig(expr: ast.Expr, catalog,
                      twig_strategy: str) -> Optional[ast.TwigJoin]:
    decomposed = _decompose_twig(expr)
    if decomposed is None:
        return None
    var, steps = decomposed

    if var.name.uri:
        return None
    stored = catalog.get(var.name.local)
    if stored is None or not stored.indexed:
        return None
    stats = stored.stats
    if stats.has_namespaces:
        return None

    kind0, name0, _preds0 = steps[0]
    if kind0 == "child":
        # the chain starts child-of-document-node: only the unique root
        # element qualifies, and the pattern root (which matches every
        # element of that name) is equivalent only when the name occurs
        # exactly once
        if stats.root_name != name0 or stats.count(name0) != 1:
            return None

    # all pattern node names must be distinct (bindings key by name)
    names: list[str] = []
    for _kind, name, preds in steps:
        names.append(name)
        for chain in preds:
            names.extend(n for _k, n in chain)
    if len(names) != len(set(names)):
        return None

    def attach_preds(node: TwigNode, preds) -> None:
        for chain in preds:
            current = node
            for kind, name in chain:
                current = current.add(TwigNode(name), kind)

    root = TwigNode(name0)
    attach_preds(root, steps[0][2])
    current = root
    for kind, name, preds in steps[1:]:
        current = current.add(TwigNode(name), kind)
        attach_preds(current, preds)
    current.is_output = True
    pattern = TwigPattern(root)

    try:
        internal = ALGORITHM_ALIASES[twig_strategy]
    except KeyError:
        raise ValueError(
            f"unknown twig_strategy {twig_strategy!r}; expected one of "
            f"{sorted(ALGORITHM_ALIASES)}") from None
    choice = choose_twig_strategy(
        stats, pattern, force=None if internal == "auto" else internal)

    node = ast.TwigJoin(var.name, pattern.to_spec(), choice.algorithm,
                        choice.est_rows, choice.edge_ests,
                        choice.holistic_branches, expr, pos=expr.pos)
    annotations = {
        "creates_nodes": False,
        "can_raise": True,       # unbound variable, cancellation
        "uses_focus": False,
        "doc_ordered": True,
        "distinct": True,
        "disjoint": False,
        "twig.chosen": choice.algorithm,
        "twig.est_rows": choice.est_rows,
    }
    for parent, _kind, child, est in choice.edge_ests:
        annotations[f"twig.edge.{parent}>{child}.est_pairs"] = est
    node.annotations.update(annotations)
    return node


def _decompose_twig(expr: ast.Expr):
    """Match ``DDO(PathExpr(... VarRef ...))`` chains whose steps carry
    structural (pure path-existence) predicates.

    Returns ``(var, steps)`` where each step is ``(edge, name, preds)``
    and ``preds`` is a list of predicate chains, each a root-relative
    ``(edge, name)`` list; None when ineligible or when no structural
    predicate is present (plain chains stay with the single-path
    AccessPath planner).
    """
    if not isinstance(expr, ast.DDO):
        return None
    node = expr.operand
    rights: list[ast.Expr] = []
    while True:
        if isinstance(node, ast.DDO):
            node = node.operand
        elif isinstance(node, ast.PathExpr):
            rights.append(node.right)
            node = node.left
        else:
            break
    if not isinstance(node, ast.VarRef) or not rights:
        return None
    var = node
    rights.reverse()

    steps: list[tuple[str, str, list]] = []
    pending_descendant = False
    has_pred = False
    last_index = len(rights) - 1
    for i, right in enumerate(rights):
        preds: list[list[tuple[str, str]]] = []
        while isinstance(right, ast.Filter):
            chain = _match_structural_pred(right.predicate)
            if chain is None:
                return None
            preds.append(chain)
            right = right.base
        if preds:
            has_pred = True
        if not isinstance(right, ast.Step):
            return None
        if _is_dos_node(right):
            if preds or pending_descendant or i == last_index:
                return None
            pending_descendant = True
            continue
        name = _simple_element_name(right)
        if name is None:
            return None
        if pending_descendant:
            if right.axis != "child":
                return None
            steps.append(("descendant", name, preds))
            pending_descendant = False
        else:
            steps.append((right.axis, name, preds))
    if pending_descendant or not steps or not has_pred:
        return None
    return var, steps


def _match_structural_pred(pred: ast.Expr) -> Optional[list[tuple[str, str]]]:
    """Match a pure structural predicate: a relative path of simple
    child/descendant element steps (``[year]``, ``[.//keyword]``,
    ``[author/last]``).  Returns the ``(edge, name)`` chain or None.

    Such predicates are existential over node sequences, so their
    effective boolean value is exactly twig-edge containment — never
    the numeric positional-filter form.
    """
    node = pred
    rights: list[ast.Expr] = []
    while True:
        if isinstance(node, ast.DDO):
            node = node.operand
        elif isinstance(node, ast.PathExpr):
            rights.append(node.right)
            node = node.left
        else:
            break
    if isinstance(node, ast.Step):
        rights.append(node)
    elif not isinstance(node, ast.ContextItem):
        return None
    rights.reverse()
    if not rights:
        return None

    chain: list[tuple[str, str]] = []
    pending_descendant = False
    for i, right in enumerate(rights):
        if not isinstance(right, ast.Step):
            return None
        if _is_dos_node(right):
            if pending_descendant or i == len(rights) - 1:
                return None
            pending_descendant = True
            continue
        name = _simple_element_name(right)
        if name is None:
            return None
        if pending_descendant:
            if right.axis != "child":
                return None
            chain.append(("descendant", name))
            pending_descendant = False
        else:
            chain.append((right.axis, name))
    if pending_descendant or not chain:
        return None
    return chain
