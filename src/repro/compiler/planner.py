"""Cost-based access-path selection.

Runs after the rewrite engine when the engine carries a
:class:`~repro.catalog.DocumentCatalog`.  Eligible path chains rooted
at a catalog-bound variable —

    $doc//book                      (element-index scan)
    $doc/site/people/person[emailaddress = "x"]   (value-index lookup)

— are replaced by :class:`~repro.xquery.ast.AccessPath` operators that
run on the stored document's posting lists instead of navigating the
tree.  The planner chooses among three physical access paths by
estimated cost from the store's :class:`~repro.storage.stats.
DocumentStats`:

- **navigation** (the unmodified expression): cost ≈ ``total_nodes``
  (every step chain scans the subtree under its context);
- **element-index scan**: one stack-tree merge per step, cost ≈ the
  sum of the step names' posting-list lengths (+ one residual
  predicate evaluation per output candidate);
- **value-index point lookup**: cost ≈ the estimated matches of the
  equality probe (occurrences / distinct values) times the chain
  verification depth.

Eligibility (anything else keeps navigation untouched):

- the chain root is a variable bound in the catalog to an *indexed*
  document, and no default element namespace is in force;
- every step is ``child::name`` or ``descendant::name`` with a simple
  no-namespace name test (``descendant-or-self::node()/child::name``
  pairs count as one descendant step), and the document itself has no
  namespaced nodes (posting lists key local names only);
- at most one predicate, on the last step, of the form
  ``name = literal`` / ``@name = literal`` (either operand order);
- the value-index path additionally requires a *string* literal (a
  numeric probe like ``price = 55`` must match ``"55.0"`` by numeric
  promotion, which a string-keyed index cannot answer) and a predicate
  name whose element occurrences are all text-only leaves.

Index results are re-verified: value probes run through whitespace-
normalized keys (a superset of exact equality), so every candidate
passes through the *original* predicate before being emitted — the
compiled access path is result-identical to navigation by
construction, and falls back to it at runtime when the bound value is
not the indexed document the plan was costed for.
"""

from __future__ import annotations

from typing import Optional

from repro.xquery import ast
from repro.xsd import types as T

#: fixed per-candidate overhead of the upward chain verification
_VERIFY_FACTOR = 2
#: an index path must beat navigation by this margin to be worth the
#: runtime binding check and posting-list machinery
_MARGIN = 0.75


def plan_access_paths(expr: ast.Expr, static_ctx, catalog) -> ast.Expr:
    """Rewrite eligible chains in ``expr`` into AccessPath operators."""
    if catalog is None or len(catalog) == 0:
        return expr
    if static_ctx is not None and getattr(static_ctx, "default_element_ns", ""):
        # step names would resolve into a namespace; posting lists
        # key local names — never eligible
        return expr

    def visit(node: ast.Expr) -> ast.Expr:
        replaced = _try_rewrite(node, catalog)
        if replaced is not None:
            return replaced
        return node.with_children(visit)

    return visit(expr)


def _try_rewrite(expr: ast.Expr, catalog) -> Optional[ast.AccessPath]:
    decomposed = _decompose(expr)
    if decomposed is None:
        return None
    var, steps, pred_parts = decomposed

    if var.name.uri:
        return None
    stored = catalog.get(var.name.local)
    if stored is None or not stored.indexed:
        return None
    stats = stored.stats
    if stats.has_namespaces:
        return None

    pred = None
    predicate_expr = None
    probe = None
    pred_key = None
    if pred_parts is not None:
        pred_kind, pred_name, literal, predicate_expr = pred_parts
        pred_key = "@" + pred_name if pred_kind == "attribute" else pred_name
        if literal.value.type.derives_from(T.XS_STRING):
            probe = str(literal.value.value)
        elif T.is_numeric(literal.value.type):
            probe = None  # element-scan only; residual does the compare
        else:
            return None
        pred = (pred_kind, pred_name, probe)

    out_name = steps[-1][1]
    nav_cost = max(1, stats.total_nodes)

    candidates: list[tuple[float, str, int]] = []

    # element-index scan: merge the chain's posting lists
    elem_cost = sum(stats.count(name) for _, name in steps)
    est_rows = stats.count(out_name)
    if pred is not None:
        elem_cost += est_rows  # one residual predicate check per candidate
        est_rows = min(est_rows, max(1, stats.estimated_matches(pred_key))) \
            if stats.value_counts.get(pred_key) else est_rows
    candidates.append((float(max(1, elem_cost)), "element_index", est_rows))

    # value-index point lookup: probe, then verify each owner's chain
    if probe is not None and stats.is_leaf_only(pred_key) \
            and stats.value_counts.get(pred_key):
        matches = stats.estimated_matches(pred_key)
        value_cost = max(1, matches) * (len(steps) + _VERIFY_FACTOR)
        candidates.append((float(value_cost), "value_index", max(1, matches)))

    cost, chosen, rows = min(candidates)
    if cost >= nav_cost * _MARGIN:
        return None

    node = ast.AccessPath(var.name, tuple(steps), pred, chosen, rows,
                          predicate_expr, expr, pos=expr.pos)
    node.annotations.update({
        "creates_nodes": False,
        "can_raise": True,       # unbound variable, cancellation
        "uses_focus": False,
        "doc_ordered": True,
        "distinct": True,
        "disjoint": False,
        "access_path.chosen": chosen,
        "access_path.est_rows": rows,
    })
    return node


def _decompose(expr: ast.Expr):
    """Match ``DDO(PathExpr(... VarRef ...))`` chains.

    Returns ``(var, steps, pred_parts)`` where ``steps`` is the
    root-to-output ``(edge, name)`` list and ``pred_parts`` is None or
    ``(kind, name, literal, comparison)`` for a final-step equality
    predicate; None when the shape is ineligible.
    """
    if not isinstance(expr, ast.DDO):
        return None
    node = expr.operand
    rights: list[ast.Expr] = []
    while True:
        if isinstance(node, ast.DDO):
            node = node.operand
        elif isinstance(node, ast.PathExpr):
            rights.append(node.right)
            node = node.left
        else:
            break
    if not isinstance(node, ast.VarRef) or not rights:
        return None
    var = node
    rights.reverse()

    steps: list[tuple[str, str]] = []
    pred_parts = None
    pending_descendant = False
    last_index = len(rights) - 1
    for i, right in enumerate(rights):
        if isinstance(right, ast.Filter):
            if i != last_index:
                return None
            pred_parts = _match_predicate(right.predicate)
            if pred_parts is None:
                return None
            right = right.base
        if not isinstance(right, ast.Step):
            return None
        if _is_dos_node(right):
            if pending_descendant or i == last_index:
                return None
            pending_descendant = True
            continue
        name = _simple_element_name(right)
        if name is None:
            return None
        if pending_descendant:
            if right.axis != "child":
                return None
            steps.append(("descendant", name))
            pending_descendant = False
        else:
            steps.append((right.axis, name))
    if pending_descendant or not steps:
        return None
    return var, steps, pred_parts


def _is_dos_node(step: ast.Step) -> bool:
    return (step.axis == "descendant-or-self" and step.test.kind == "node"
            and step.test.name is None and step.test.type_name is None)


def _simple_element_name(step: ast.Step) -> Optional[str]:
    if step.axis not in ("child", "descendant"):
        return None
    test = step.test
    if test.kind != "element" or test.name is None or test.type_name is not None:
        return None
    if test.name.uri or test.name.local in ("*", ""):
        return None
    return test.name.local


def _match_predicate(pred: ast.Expr):
    """``name = literal`` / ``@name = literal`` (general comparison)."""
    if not isinstance(pred, ast.Comparison) or pred.family != "general" \
            or pred.op != "=":
        return None
    for lhs, rhs in ((pred.left, pred.right), (pred.right, pred.left)):
        if not isinstance(rhs, ast.Literal) or not isinstance(lhs, ast.Step):
            continue
        test = lhs.test
        if test.type_name is not None or test.name is None \
                or test.name.uri or test.name.local in ("*", ""):
            continue
        if lhs.axis == "child" and test.kind == "element":
            return ("child", test.name.local, rhs, pred)
        if lhs.axis == "attribute" and test.kind == "attribute":
            return ("attribute", test.name.local, rhs, pred)
    return None
