"""FLWOR rewrites: unnesting, loop-invariant hoisting, FOR minimization.

All three come straight from the tutorial:

- *FLWR unnesting* — ``for $x in (for $y in E where P return R) ...``
  flattens to a single nested loop (no count variables involved; the
  tutorial flags count variables as the hard case, and we skip exactly
  those).
- *LET unfolding / hoisting* — an expression inside a loop that does
  not depend on the loop variable is computed once outside it;
  legality leans on lazy evaluation for error behaviour, which our
  runtime guarantees.
- *FOR clauses minimization* — a loop whose body ignores the loop
  variable, over a statically-singleton sequence, is just the body.
"""

from __future__ import annotations

from repro.compiler.analysis import count_var_uses, free_vars
from repro.qname import QName
from repro.xquery import ast


def for_unnesting(expr: ast.Expr, ctx) -> ast.Expr | None:
    """for $x in (for $y in E return R) return B
       ⇒ for $y in E return (for $x in R return B)   [$y not free in B]"""
    if not isinstance(expr, ast.ForExpr) or expr.pos_var is not None:
        return None
    inner = expr.seq
    if isinstance(inner, ast.ForExpr) and inner.pos_var is None:
        if inner.var in free_vars(expr.body) or inner.var == expr.var:
            return None
        return ast.ForExpr(
            inner.var, inner.seq,
            ast.ForExpr(expr.var, inner.body, expr.body, None, expr.pos),
            None, inner.pos)
    if isinstance(inner, ast.LetExpr):
        # for $x in (let $y := V return R) return B
        #   ⇒ let $y := V return for $x in R return B   [$y not free in B]
        if inner.var in free_vars(expr.body) or inner.var == expr.var:
            return None
        return ast.LetExpr(
            inner.var, inner.value,
            ast.ForExpr(expr.var, inner.body, expr.body, None, expr.pos),
            inner.pos)
    return None


_hoist_counter = 0

#: subexpression kinds worth paying a binding for
_HOISTABLE = (ast.DDO, ast.PathExpr, ast.FunctionCall)


def loop_invariant_hoisting(expr: ast.Expr, ctx) -> ast.Expr | None:
    """Compute loop-invariant subexpressions once, outside the loop.

    ``for $x in E return ... V ...`` with V independent of $x (and of
    anything bound inside the body) becomes
    ``let $h := V return for $x in E return ... $h ...`` — the
    tutorial's LET-unfolding direction, legal because our runtime is
    consistently lazy ("guaranteed only if runtime implements
    consistently lazy evaluation").  V must not construct nodes
    (hoisting construction would merge per-iteration fresh identities)
    and must not read the focus.
    """
    global _hoist_counter
    if not isinstance(expr, ast.ForExpr):
        return None
    loop_vars = {expr.var}
    if expr.pos_var is not None:
        loop_vars.add(expr.pos_var)

    candidate = _find_invariant(expr.body, loop_vars, set())
    if candidate is None:
        return None
    _hoist_counter += 1
    var = QName("", f"#hoist{_hoist_counter}")

    def replace(node: ast.Expr) -> ast.Expr:
        if node is candidate:
            return ast.VarRef(var, node.pos)
        return node.with_children(replace)

    new_body = replace(expr.body)
    return ast.LetExpr(
        var, candidate,
        ast.ForExpr(expr.var, expr.seq, new_body, expr.pos_var, expr.pos),
        expr.pos)


def _find_invariant(body: ast.Expr, loop_vars: set[QName],
                    bound_here: set[QName]) -> ast.Expr | None:
    """First maximal hoistable subexpression independent of the loop."""
    if isinstance(body, _HOISTABLE):
        ann = body.annotations
        if not ann.get("creates_nodes", True) and not ann.get("uses_focus", True):
            fv = free_vars(body)
            if not (fv & loop_vars) and not (fv & bound_here):
                return body
    # descend, tracking locally-bound names (they make subtrees non-hoistable
    # even if the loop variable itself is absent)
    if isinstance(body, ast.LetExpr):
        found = _find_invariant(body.value, loop_vars, bound_here)
        if found is not None:
            return found
        return _find_invariant(body.body, loop_vars, bound_here | {body.var})
    if isinstance(body, ast.ForExpr):
        found = _find_invariant(body.seq, loop_vars, bound_here)
        if found is not None:
            return found
        inner = bound_here | {body.var}
        if body.pos_var is not None:
            inner |= {body.pos_var}
        return _find_invariant(body.body, loop_vars, inner)
    if isinstance(body, ast.Quantified):
        found = _find_invariant(body.seq, loop_vars, bound_here)
        if found is not None:
            return found
        return _find_invariant(body.cond, loop_vars, bound_here | {body.var})
    if isinstance(body, ast.FLWOR):
        inner = set(bound_here)
        for clause in body.clauses:
            found = _find_invariant(clause.expr, loop_vars, inner)
            if found is not None:
                return found
            inner.add(clause.var)
            if isinstance(clause, ast.ForClause) and clause.pos_var is not None:
                inner.add(clause.pos_var)
        for sub in ([body.where] if body.where is not None else []) + \
                [key for _gvar, key in body.group]:
            found = _find_invariant(sub, loop_vars, inner)
            if found is not None:
                return found
        inner |= {gvar for gvar, _ in body.group}
        for sub in [spec.expr for spec in body.order] + [body.ret]:
            found = _find_invariant(sub, loop_vars, inner)
            if found is not None:
                return found
        return None
    if isinstance(body, ast.Typeswitch):
        found = _find_invariant(body.operand, loop_vars, bound_here)
        if found is not None:
            return found
        for case in list(body.cases) + [body.default]:
            extra = {case.var} if case.var is not None else set()
            found = _find_invariant(case.body, loop_vars, bound_here | extra)
            if found is not None:
                return found
        return None
    for child in body.children():
        found = _find_invariant(child, loop_vars, bound_here)
        if found is not None:
            return found
    return None


_SINGLETON_KINDS = (ast.Literal, ast.ContextItem, ast.ElementCtor,
                    ast.AttributeCtor, ast.DocumentCtor)


def for_minimization(expr: ast.Expr, ctx) -> ast.Expr | None:
    """for $x in E return B  ⇒  B  when B ignores $x and E is a singleton.

    (The tutorial's example eliminates ``$y in $input/c`` joins whose
    variable is unused; we implement the statically-safe singleton
    case: cardinality of E must be exactly one for the elimination to
    preserve the number of B evaluations.)
    """
    if not isinstance(expr, ast.ForExpr) or expr.pos_var is not None:
        return None
    uses, _ = count_var_uses(expr.body, expr.var)
    if uses:
        return None
    if isinstance(expr.seq, _SINGLETON_KINDS) or \
            expr.seq.annotations.get("singleton", False):
        return expr.body
    if isinstance(expr.seq, ast.EmptySequence):
        return ast.EmptySequence(expr.pos)
    return None
