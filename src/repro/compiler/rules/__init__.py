"""The rewrite-rule library.

Organized by family (mirrors the tutorial's "Some Xquery logical
rewritings" slide):

- :mod:`repro.compiler.rules.basic` — constant folding, boolean
  algebra, conditional simplification;
- :mod:`repro.compiler.rules.lets` — LET clause folding/elimination,
  with the side-effect and laziness guards the tutorial derives;
- :mod:`repro.compiler.rules.flwor` — FLWOR (un)nesting, FOR-clause
  minimization, loop-invariant hoisting;
- :mod:`repro.compiler.rules.paths` — navigation rewrites and the
  doc-order/distinct (DDO) elision of experiment E5.
"""
