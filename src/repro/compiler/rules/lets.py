"""LET clause folding — with the tutorial's guards.

The naive FP rewrite ``let $x := E return B  ⇒  B[$x/E]`` is wrong in
XQuery when E creates nodes (substitution duplicates the construction:
``let $x := <a/> return ($x, $x)`` must yield the *same* node twice)
and when namespace scopes differ ("XML does not allow cut and paste").
Our normalizer resolves namespaces before rewriting (the tutorial's
fix #1), so the remaining guards are the sufficient conditions from
the "fixing the first problem" slide:

- E never generates new nodes in the result, **or**
- $x is used (a) exactly once, (b) not inside a loop, and (c) not as
  input to a recursive function (our recursive calls are opaque
  FunctionCalls, which count as loops here).

Dead-LET elimination drops unused bindings.  Because evaluation is
lazy, an unused binding's errors were never observable anyway, so the
rewrite preserves semantics ("guaranteed only if runtime implements
consistently lazy evaluation" — ours does).
"""

from __future__ import annotations

from repro.compiler.analysis import count_var_uses, free_vars
from repro.qname import QName
from repro.xquery import ast


def _substitute(expr: ast.Expr, var: QName, replacement: ast.Expr) -> ast.Expr:
    """B[$var/replacement], respecting shadowing."""
    if isinstance(expr, ast.VarRef):
        return replacement if expr.name == var else expr
    if isinstance(expr, ast.LetExpr) and expr.var == var:
        value = _substitute(expr.value, var, replacement)
        if value is expr.value:
            return expr
        return ast.LetExpr(expr.var, value, expr.body, expr.pos)
    if isinstance(expr, ast.ForExpr) and (expr.var == var or expr.pos_var == var):
        seq = _substitute(expr.seq, var, replacement)
        if seq is expr.seq:
            return expr
        return ast.ForExpr(expr.var, seq, expr.body, expr.pos_var, expr.pos)
    if isinstance(expr, ast.Quantified) and expr.var == var:
        seq = _substitute(expr.seq, var, replacement)
        if seq is expr.seq:
            return expr
        return ast.Quantified(expr.kind, expr.var, seq, expr.cond, expr.pos)
    return expr.with_children(lambda e: _substitute(e, var, replacement))


_TRIVIAL = (ast.Literal, ast.VarRef, ast.EmptySequence, ast.ContextItem)


def let_folding(expr: ast.Expr, ctx) -> ast.Expr | None:
    if not isinstance(expr, ast.LetExpr):
        return None
    value = expr.value
    uses, in_loop = count_var_uses(expr.body, expr.var)
    if uses == 0:
        return None  # dead-let rule handles it

    creates_nodes = value.annotations.get("creates_nodes", True)
    trivial = isinstance(value, _TRIVIAL)

    if trivial:
        # substituting a literal/variable is always safe and always a win
        return _substitute(expr.body, expr.var, value)

    if not creates_nodes and uses == 1 and not in_loop:
        # single non-looped use of a non-constructing value: inline.
        # (Multiple uses would lose the buffer-iterator sharing; a loop
        # would re-evaluate per iteration.)
        return _substitute(expr.body, expr.var, value)

    return None


def dead_let_elimination(expr: ast.Expr, ctx) -> ast.Expr | None:
    if not isinstance(expr, ast.LetExpr):
        return None
    uses, _ = count_var_uses(expr.body, expr.var)
    if uses == 0:
        # lazy evaluation: an unconsumed binding never runs, so dropping
        # it cannot change observable behaviour (even its errors)
        return expr.body
    return None


# ---------------------------------------------------------------------------
# Common sub-expression factorization
# ---------------------------------------------------------------------------

_cse_counter = 0

#: expression kinds worth a binding
_CSE_KINDS = (ast.PathExpr, ast.DDO, ast.FunctionCall)


def common_subexpression(expr: ast.Expr, ctx) -> ast.Expr | None:
    """Factor repeated identical subexpressions into one LET.

    The tutorial's two preliminary questions — *same expression?* and
    *same context?* — are answered by structural equality plus two
    conservative context guards: a candidate must not read the focus
    (different occurrences may sit under different focus bindings) and
    must not reference any variable bound between this node and the
    occurrence.  Side-effecting (node-creating) candidates are excluded
    because factoring would merge distinct fresh identities; erroring
    candidates are fine, because lazy evaluation means the shared
    binding raises exactly when (and if) a consumer demands it — the
    tutorial's ``1 idiv 0`` example.
    """
    global _cse_counter
    # apply at binding introduction points to keep sweeps cheap
    if not isinstance(expr, (ast.LetExpr, ast.ForExpr, ast.IfExpr,
                             ast.SequenceExpr, ast.ElementCtor)):
        return None

    from repro.compiler.analysis import expr_fingerprint

    buckets: dict[str, list[ast.Expr]] = {}

    def collect(node: ast.Expr, blocked: frozenset[QName]) -> None:
        if isinstance(node, _CSE_KINDS):
            ann = node.annotations
            if not ann.get("creates_nodes", True) and not ann.get("uses_focus", True):
                from repro.compiler.analysis import free_vars

                if not (free_vars(node) & blocked):
                    buckets.setdefault(expr_fingerprint(node), []).append(node)
                    # keep descending: the shared expression may be a
                    # fragment nested inside two different outer calls
        if isinstance(node, ast.LetExpr):
            collect(node.value, blocked)
            collect(node.body, blocked | {node.var})
            return
        if isinstance(node, ast.ForExpr):
            collect(node.seq, blocked)
            extra = {node.var} | ({node.pos_var} if node.pos_var else set())
            collect(node.body, blocked | extra)
            return
        if isinstance(node, ast.Quantified):
            collect(node.seq, blocked)
            collect(node.cond, blocked | {node.var})
            return
        if isinstance(node, ast.FLWOR):
            inner_blocked = set(blocked)
            for clause in node.clauses:
                collect(clause.expr, frozenset(inner_blocked))
                inner_blocked.add(clause.var)
                if isinstance(clause, ast.ForClause) and clause.pos_var is not None:
                    inner_blocked.add(clause.pos_var)
            frozen = frozenset(inner_blocked)
            if node.where is not None:
                collect(node.where, frozen)
            for _gvar, key in node.group:
                collect(key, frozen)
            inner_blocked |= {gvar for gvar, _ in node.group}
            frozen = frozenset(inner_blocked)
            for spec in node.order:
                collect(spec.expr, frozen)
            collect(node.ret, frozen)
            return
        if isinstance(node, ast.Typeswitch):
            collect(node.operand, blocked)
            for case in list(node.cases) + [node.default]:
                extra = {case.var} if case.var is not None else set()
                collect(case.body, blocked | extra)
            return
        for child in node.children():
            collect(child, blocked)

    collect(expr, frozenset())

    for occurrences in buckets.values():
        if len(occurrences) < 2:
            continue
        from repro.compiler.analysis import expr_equal

        first = occurrences[0]
        matches = [o for o in occurrences if expr_equal(o, first)]
        if len(matches) < 2:
            continue
        _cse_counter += 1
        var = QName("", f"#cse{_cse_counter}")
        match_ids = {id(m) for m in matches}

        def replace(node: ast.Expr) -> ast.Expr:
            if id(node) in match_ids:
                return ast.VarRef(var, node.pos)
            return node.with_children(replace)

        return ast.LetExpr(var, first, replace(expr), expr.pos)
    return None
