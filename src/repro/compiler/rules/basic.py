"""Constant folding and boolean/conditional simplification.

Folding evaluates an operator over literal operands at compile time.
The guard the tutorial insists on: folding must not *change* error
behaviour.  We fold only when the constant evaluation *succeeds*; an
expression that would raise (``1 idiv 0``) is left in place so the
error (if the lazy evaluator ever demands it) appears at run time,
exactly as unoptimized code would behave.
"""

from __future__ import annotations

from repro.errors import XQueryError
from repro.runtime.arithmetic import arithmetic, negate, unary_plus
from repro.runtime.compare import general_compare, value_compare
from repro.runtime.ebv import effective_boolean_value
from repro.xdm.items import AtomicValue, boolean
from repro.xquery import ast
from repro.xsd import types as T


def _literal(expr: ast.Expr) -> AtomicValue | None:
    if isinstance(expr, ast.Literal):
        return expr.value
    return None


def _is_empty(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.EmptySequence)


def constant_folding(expr: ast.Expr, ctx) -> ast.Expr | None:
    if isinstance(expr, ast.Arithmetic):
        a, b = _literal(expr.left), _literal(expr.right)
        if (a is not None or _is_empty(expr.left)) and \
           (b is not None or _is_empty(expr.right)):
            try:
                result = arithmetic(expr.op, a, b)
            except XQueryError:
                return None  # keep runtime error semantics
            if result is None:
                return ast.EmptySequence(expr.pos)
            return ast.Literal(result, expr.pos)
        return None

    if isinstance(expr, ast.UnaryExpr):
        a = _literal(expr.operand)
        if a is not None:
            try:
                result = negate(a) if expr.op == "-" else unary_plus(a)
            except XQueryError:
                return None
            if result is None:
                return ast.EmptySequence(expr.pos)
            return ast.Literal(result, expr.pos)
        return None

    if isinstance(expr, ast.Comparison):
        a, b = _literal(expr.left), _literal(expr.right)
        if a is None or b is None:
            return None
        try:
            if expr.family == "value":
                return ast.Literal(boolean(value_compare(expr.op, a, b)), expr.pos)
            if expr.family == "general":
                return ast.Literal(boolean(general_compare(expr.op, [a], [b])), expr.pos)
        except XQueryError:
            return None
        return None

    return None


def boolean_simplification(expr: ast.Expr, ctx) -> ast.Expr | None:
    """Two-valued boolean algebra over literal operands.

    ``false and error => false`` is explicitly licensed by the
    tutorial ("non-deterministically"), so short-circuiting on a known
    constant is always legal even if the other side could raise.
    """
    if isinstance(expr, ast.AndExpr):
        for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
            value = _ebv_literal(side)
            if value is False:
                return ast.Literal(boolean(False), expr.pos)
            if value is True:
                return _as_boolean(other, expr.pos)
    if isinstance(expr, ast.OrExpr):
        for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
            value = _ebv_literal(side)
            if value is True:
                return ast.Literal(boolean(True), expr.pos)
            if value is False:
                return _as_boolean(other, expr.pos)
    return None


def _ebv_literal(expr: ast.Expr) -> bool | None:
    if isinstance(expr, ast.EmptySequence):
        return False
    value = _literal(expr)
    if value is None:
        return None
    try:
        return effective_boolean_value([value])
    except XQueryError:
        return None


def _as_boolean(expr: ast.Expr, pos) -> ast.Expr:
    """Wrap an expression so its EBV becomes an xs:boolean value."""
    if isinstance(expr, ast.Literal) and expr.value.type is T.XS_BOOLEAN:
        return expr
    from repro.qname import fn

    return ast.FunctionCall(fn("boolean"), [expr], pos)


def if_simplification(expr: ast.Expr, ctx) -> ast.Expr | None:
    if not isinstance(expr, ast.IfExpr):
        return None
    value = _ebv_literal(expr.cond)
    if value is True:
        return expr.then
    if value is False:
        return expr.orelse
    return None


def typeswitch_shortcut(expr: ast.Expr, ctx) -> ast.Expr | None:
    """typeswitch over a literal: pick the branch statically."""
    if not isinstance(expr, ast.Typeswitch):
        return None
    value = _literal(expr.operand)
    if value is None:
        return None
    from repro.compiler.sequencetype import resolve_sequence_type

    for case in expr.cases:
        assert case.seq_type is not None
        try:
            seq_type = resolve_sequence_type(case.seq_type, ctx)
        except XQueryError:
            return None
        if seq_type.matches([value]):
            if case.var is not None:
                return ast.LetExpr(case.var, expr.operand, case.body, expr.pos)
            return case.body
    default = expr.default
    if default.var is not None:
        return ast.LetExpr(default.var, expr.operand, default.body, expr.pos)
    return default.body
