"""Path rewrites: DDO elision and navigation simplification.

DDO elision is experiment E5: the normalizer wraps every path level in
an explicit sort-distinct operator; this rule deletes the operator
whenever the analysis pass proves the input already document-ordered
and duplicate-free (``/a/b/c`` — yes; ``//a/b`` — distinct but
unordered, keep the sort; ``//a//b`` — keep everything).
"""

from __future__ import annotations

from repro.xquery import ast


def ddo_elimination(expr: ast.Expr, ctx) -> ast.Expr | None:
    if not isinstance(expr, ast.DDO):
        return None
    inner = expr.operand
    if isinstance(inner, ast.DDO):
        return inner  # idempotent
    ann = inner.annotations
    if ann.get("doc_ordered", False) and ann.get("distinct", False):
        return inner
    return None


def path_simplification(expr: ast.Expr, ctx) -> ast.Expr | None:
    """Drop no-op self::node() steps: ``E/self::node()`` ⇒ ``E``."""
    if isinstance(expr, ast.PathExpr):
        right = expr.right
        if isinstance(right, ast.Step) and right.axis == "self" \
                and right.test.kind == "node" and right.test.name is None \
                and right.test.type_name is None:
            return expr.left
    return None


def _is_dos_node_step(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.Step)
            and expr.axis == "descendant-or-self"
            and expr.test.kind == "node"
            and expr.test.name is None
            and expr.test.type_name is None)


def parent_elimination(expr: ast.Expr, ctx) -> ast.Expr | None:
    """``E/child::T/parent::node()`` ⇒ ``E[child::T]``.

    The tutorial's "Dealing with backwards navigation" rewrite: replace
    backward navigation with forward navigation plus an existence
    filter.  The parents of the T-children of E are exactly the E-nodes
    having a T child; the filter form is both forward-only (streamable)
    and duplicate-free when E is.
    """
    if not isinstance(expr, ast.PathExpr):
        return None
    right = expr.right
    if not (isinstance(right, ast.Step) and right.axis == "parent"
            and right.test.kind == "node" and right.test.name is None
            and right.test.type_name is None):
        return None
    left = expr.left
    inner = left.operand if isinstance(left, ast.DDO) else left
    if not isinstance(inner, ast.PathExpr):
        return None
    child_step = inner.right
    if not (isinstance(child_step, ast.Step) and child_step.axis == "child"):
        return None
    return ast.Filter(inner.left,
                      ast.Step("child", child_step.test, child_step.pos),
                      expr.pos)


def descendant_collapse(expr: ast.Expr, ctx) -> ast.Expr | None:
    """``E/descendant-or-self::node()/child::T`` ⇒ ``E/descendant::T``.

    The rewrite behind the tutorial's ``/a//b`` row: per-node descendant
    visits from a disjoint ordered input concatenate in document order,
    so after this collapse the analysis can prove the trailing DDO
    redundant — which the two-step form never permits.
    """
    if not isinstance(expr, ast.PathExpr):
        return None
    right = expr.right
    if not (isinstance(right, ast.Step) and right.axis == "child"):
        return None
    left = expr.left
    inner = left.operand if isinstance(left, ast.DDO) else left
    if not isinstance(inner, ast.PathExpr) or not _is_dos_node_step(inner.right):
        return None
    collapsed = ast.Step("descendant", right.test, right.pos)
    return ast.PathExpr(inner.left, collapsed, expr.pos)
