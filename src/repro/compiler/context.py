"""The static context.

The tutorial's "Static context" slide lists what compilation sees:
in-scope namespaces, default element/function namespaces, in-scope
variables, functions, schema definitions, base URI, statically known
documents.  This class is that record; the engine populates it from
the prolog plus application settings, and every compilation phase
reads it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import UndefinedNameError
from repro.qname import FN_NS, NamespaceBindings, QName
from repro.xsd import types as T

if TYPE_CHECKING:
    from repro.xquery.ast import FunctionDecl
    from repro.xsd.schema import Schema


class StaticContext:
    """Everything known at compile time."""

    def __init__(self):
        self.namespaces = NamespaceBindings()
        self.default_element_ns: str = ""
        self.default_function_ns: str = FN_NS
        #: variable name → declared sequence type (or None)
        self.variables: dict[QName, Any] = {}
        #: (name, arity) → FunctionDecl for user functions
        self.functions: dict[tuple[QName, int], "FunctionDecl"] = {}
        #: imported schemas by target namespace
        self.schemas: dict[str, "Schema"] = {}
        self.types = T.TypeRegistry()
        self.base_uri: str = ""
        #: statically-known documents: uri → provider (tests/engine use this)
        self.known_documents: dict[str, Any] = {}
        #: whether order matters for the whole query ("unordered" mode)
        self.ordering_mode: str = "ordered"

    def declare_variable(self, name: QName, type_decl=None) -> None:
        self.variables[name] = type_decl

    def declare_function(self, decl: "FunctionDecl") -> None:
        key = (decl.name, decl.arity)
        if key in self.functions:
            raise UndefinedNameError(
                f"function {decl.name}#{decl.arity} declared twice", code="XQST0034")
        self.functions[key] = decl

    def lookup_function(self, name: QName, arity: int):
        return self.functions.get((name, arity))

    def lookup_type(self, name: QName):
        """Resolve a type name against imported schemas, then built-ins."""
        for schema in self.schemas.values():
            found = schema.lookup_type(name)
            if found is not None:
                return found
        return self.types.lookup(name)

    def import_schema(self, schema: "Schema") -> None:
        self.schemas[schema.target_namespace] = schema

    def fingerprint(self) -> tuple:
        """A hashable digest of everything compilation reads.

        Two contexts with equal fingerprints make any query compile to
        the same artifacts, so the engine's compile cache keys on it.
        Cheap by-value members (namespaces, base URI) are digested
        directly; members holding arbitrary objects (function
        declarations, schemas, document providers) are digested by
        identity — replacing such an object changes the fingerprint,
        mutating it in place does not (callers who mutate must not
        share a base context across compiles they want distinguished).
        """
        return (
            tuple(sorted(self.namespaces.in_scope().items())),
            self.default_element_ns,
            self.default_function_ns,
            tuple(sorted((name.clark, id(decl))
                         for name, decl in self.variables.items())),
            tuple(sorted((name.clark, arity, id(decl))
                         for (name, arity), decl in self.functions.items())),
            tuple(sorted((ns, id(schema))
                         for ns, schema in self.schemas.items())),
            id(self.types),
            self.base_uri,
            tuple(sorted((uri, id(provider))
                         for uri, provider in self.known_documents.items())),
            self.ordering_mode,
        )

    def copy(self) -> "StaticContext":
        clone = StaticContext()
        clone.namespaces = self.namespaces.copy()
        clone.default_element_ns = self.default_element_ns
        clone.default_function_ns = self.default_function_ns
        clone.variables = dict(self.variables)
        clone.functions = dict(self.functions)
        clone.schemas = dict(self.schemas)
        clone.types = self.types
        clone.base_uri = self.base_uri
        clone.known_documents = dict(self.known_documents)
        clone.ordering_mode = self.ordering_mode
        return clone
