"""Compile-to-source: emit specialized Python per query.

The second execution backend (``Engine(codegen="source")``).  Where the
closure backend builds a tree of generator closures — one Python frame
per operator per item — this module walks the *same* post-planner core
tree and writes one flat Python generator function per fused region:
whole FLWOR bodies (the ``for``/``let``/``if`` chains normalization
produces), path chains, predicate filters, and aggregate tails collapse
into plain loops with no per-operator calls.  It is the paper's
"compile the query into an executable" move (XQRL compiles queries to
Java; we compile to Python and ``compile()`` the text in-process).

Contracts with the closure backend, in both directions:

- **Byte-identical semantics.**  Every emission mirrors the matching
  ``_c_`` closure in :mod:`repro.compiler.codegen` exactly — evaluation
  order, laziness, error codes, and cancellation-poll placement
  included.  The differential suites (``tests/test_codegen_source.py``)
  enforce this over the XMark/bib/seeded-random corpus.
- **Fallback, not failure.**  Subtrees this emitter does not fuse
  (order-by FLWOR, typeswitch, node constructors, access paths,
  parallel groups, user functions, ...) compile through the shared
  :class:`~repro.compiler.codegen.CodeGenerator` and run as ordinary
  closure plans behind :func:`_fallback_iter`, which transfers the
  generated code's variable bindings (as replayable sequences — the
  same :class:`BufferedSequence` contract the batched backend's
  ``_adapt_item`` keeps) and focus into a child dynamic context.  Each
  crossing counts ``codegen.fallback_closure``.
- **Observability.**  The root region is registered as a hooked
  :class:`~repro.observability.explain.PlanNode` (tagged
  ``codegen=source``) so EXPLAIN ANALYZE item counts match the closure
  backend's root operator; fused operators appear as ``codegen=fused``
  nodes, closure seams as ``codegen=closure``.  The generated text is
  registered with :mod:`linecache`, so tracebacks out of generated
  loops show real source lines.

Early exit (EBV, ``fn:exists``, general comparisons, positional
filters) uses the :class:`_Early` control exception *with a per-site
token*: each consumption site only absorbs its own escapes and
re-raises the rest, so a lazily-satisfied inner consumer never causes
an outer producer to keep running (which would diverge from the
closure backend's pull semantics).
"""

from __future__ import annotations

import itertools
import linecache
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.compiler.analysis import uses_last
from repro.compiler.codegen import (
    CodeGenerator,
    Plan,
    _all_nodes,
    _compile_step_fn,
    _opt_integer,
    _opt_single_node,
)
from repro.compiler.context import StaticContext
from repro.errors import DynamicError, TypeError_
from repro.qname import FN_NS, QName, XDT_NS, XS_NS
from repro.runtime import functions as fnlib
from repro.runtime.arithmetic import arithmetic, negate, unary_plus
from repro.runtime.batching import ensure_replayable
from repro.runtime.compare import (
    _GENERAL_TO_VALUE,
    _general_pair,
    node_compare,
    order_compare,
    value_compare,
)
from repro.runtime.dynamic import DynamicContext
from repro.runtime.ebv import _atomic_ebv, effective_boolean_value
from repro.runtime.iterators import BufferedSequence
from repro.xdm.atomize import atomize_item
from repro.xdm.items import AtomicValue, boolean, integer
from repro.xdm.nodes import ElementNode, Node, TextNode
from repro.xdm.order import in_document_order
from repro.xquery import ast
from repro.xsd import types as T
from repro.xsd.casting import cast_value

#: sequence for generated-module filenames (linecache keys)
_source_seq = itertools.count()


class _Early(Exception):
    """Control-flow escape for early-exit consumers.

    Carries the consumption site's token as ``args[0]``; every
    ``except _Early`` the emitter writes re-raises foreign tokens so an
    escape always unwinds to the site that requested it.
    """


#: sentinel for "no first item seen yet" in EBV accumulation
_ABSENT = object()


def _fallback_iter(plan, dctx, bindings, focus):
    """Run a closure plan at a source/closure seam.

    ``bindings`` are the generated code's in-scope variables as
    ``(name, value)`` pairs; values cross the boundary replayable
    (:func:`repro.runtime.batching.ensure_replayable`) so a LET binding
    shared between generated loops and the closure plan is pulled at
    most once, exactly as within either backend alone.
    """
    dctx.count("codegen.fallback_closure")
    if bindings:
        token = dctx._shared.cancellation
        dctx = dctx.bind_many({name: ensure_replayable(value, token)
                               for name, value in bindings})
    if focus is not None:
        dctx = dctx.with_focus(focus[0], focus[1], focus[2])
    return plan(dctx)


def _filter_keep(result, pos):
    """The item-mode predicate decision over a materialized result.

    Mirrors ``_c_Filter``: an all-numeric result filters positionally
    (including the 2003-draft ``author[1 to 2]`` sequence form), any
    other result is taken by effective boolean value.
    """
    if result and all(isinstance(v, AtomicValue) and T.is_numeric(v.type)
                      for v in result):
        return any(float(v.value) == pos for v in result)
    return effective_boolean_value(iter(result))


def _ddo_list(items, dctx):
    """Distinct-doc-order over a materialized list (mirrors ``_c_DDO``)."""
    if not items:
        return ()
    any_nodes = False
    all_nodes = True
    for item in items:
        if isinstance(item, Node):
            any_nodes = True
        else:
            all_nodes = False
    if all_nodes:
        dctx.count("ddo_sorts")
        return in_document_order(items)
    if any_nodes:
        raise TypeError_("path result mixes nodes and atomic values",
                         code="XPTY0018")
    return items


def _set_result(op, left_nodes, right_nodes):
    """Combine validated node lists for a SetOp (mirrors ``_c_SetOp``)."""
    right_ids = {id(n) for n in right_nodes}
    if op == "union":
        result = left_nodes + right_nodes
    elif op == "intersect":
        result = [n for n in left_nodes if id(n) in right_ids]
    else:
        result = [n for n in left_nodes if id(n) not in right_ids]
    return in_document_order(result)


#: names every generated module can see (the emitter adds per-query
#: constants — literals, QNames, step kernels, closure plans — on top)
_BASE_ENV = {
    "_Early": _Early,
    "_ABSENT": _ABSENT,
    "_atomize_item": atomize_item,
    "_ebv_atom": _atomic_ebv,
    "_general_pair": _general_pair,
    "_value_compare": value_compare,
    "_node_compare": node_compare,
    "_order_compare": order_compare,
    "_arith": arithmetic,
    "_negate": negate,
    "_uplus": unary_plus,
    "_integer": integer,
    "_boolean": boolean,
    "_AtomicValue": AtomicValue,
    "_cast_value": cast_value,
    "_Node": Node,
    "_Elem": ElementNode,
    "_Text": TextNode,
    "_TypeError_": TypeError_,
    "_DynamicError": DynamicError,
    "_BufferedSequence": BufferedSequence,
    "_fb": _fallback_iter,
    "_filter_keep": _filter_keep,
    "_ddo_list": _ddo_list,
    "_set_result": _set_result,
    "_all_nodes": _all_nodes,
    "_opt_integer": _opt_integer,
    "_opt_single_node": _opt_single_node,
}

#: fn: builtins whose EBV equals their (boolean-singleton) value — used
#: to route fused predicates through the static-boolean EBV emission
_EBV_FUSED_BUILTINS = ("not", "boolean", "exists", "empty")


def _nodes_only_path(expr) -> bool:
    """Can the expression statically produce only nodes, without
    raising while being produced?

    True for axis steps and chains of them (with DDO wrappers): node
    inputs through name/kind tests never yield atomics and never
    raise, so their effective boolean value equals ``fn:exists`` — a
    predicate of this shape may early-exit instead of materializing.
    """
    if isinstance(expr, ast.Step):
        return True
    if isinstance(expr, ast.DDO):
        return _nodes_only_path(expr.operand)
    if isinstance(expr, ast.PathExpr):
        return _nodes_only_path(expr.left) and isinstance(expr.right, ast.Step)
    return False


def _peel_ddo(expr):
    """Strip DDO wrappers (sound when only existence is observed)."""
    while isinstance(expr, ast.DDO):
        expr = expr.operand
    return expr


def _yields_only_nodes(expr) -> bool:
    """Is every item the expression yields a node?  (Errors are fine —
    this is weaker than :func:`_nodes_only_path` — so the per-item
    XPTY0019 guard downstream of the expression is dead code.)"""
    if isinstance(expr, ast.Step):
        return True
    if isinstance(expr, ast.DDO):
        # DDO passes atomic-only sequences through, so the operand
        # must itself be nodes-only
        return _yields_only_nodes(expr.operand)
    if isinstance(expr, ast.PathExpr):
        # a step on the right means every output item came off an axis
        # walk, whatever the left produced
        return _yields_only_nodes(expr.right)
    if isinstance(expr, ast.Filter):
        return _yields_only_nodes(expr.base)
    return False


def _static_boolean(expr) -> bool:
    """Is the expression statically a boolean singleton?

    For such predicates ``_filter_keep`` always takes the EBV branch
    (booleans are not numeric), so the emitter may skip materializing
    the predicate result entirely.
    """
    if isinstance(expr, (ast.Comparison, ast.AndExpr, ast.OrExpr,
                         ast.Quantified, ast.InstanceOf, ast.CastableExpr)):
        return True
    if isinstance(expr, ast.Literal):
        return expr.value.type.derives_from(T.XS_BOOLEAN)
    if isinstance(expr, ast.FunctionCall) and expr.name.uri == FN_NS:
        if expr.name.local in _EBV_FUSED_BUILTINS and len(expr.args) == 1:
            return True
        if expr.name.local in ("true", "false") and not expr.args:
            return True
        return False
    if isinstance(expr, ast.IfExpr):
        return _static_boolean(expr.then) and _static_boolean(expr.orelse)
    return False


# ---------------------------------------------------------------------------
# Sinks: code-emitting consumers
# ---------------------------------------------------------------------------
#
# A sink receives each *produced item* as a code string at every
# production site.  Convention: producers pre-assign effectful
# expressions to temps before calling ``sink.item`` (``_as_local``), so
# a sink may duplicate or discard the code string freely; and a sink's
# ``item`` may be invoked at several sites (e.g. both branches of an
# if), so everything it emits must be self-contained.


class _YieldSink:
    def item(self, em: "SourcePlanCompiler", code: str) -> None:
        em.w(f"yield {code}")


class _CollectSink:
    def __init__(self, target: str):
        self.target = target

    def item(self, em, code):
        em.w(f"{self.target}.append({code})")


class _AtomizeSink:
    def __init__(self, target: str):
        self.target = target

    def item(self, em, code):
        em.w(f"{self.target}.extend(_atomize_item({code}))")


class _CountSink:
    def __init__(self, counter: str):
        self.counter = counter

    def item(self, em, code):
        em.w(f"{self.counter} += 1")


class _DistinctCountSink:
    """Streaming distinct count for ``count(DDO(...))``: nodes are
    deduped by identity (the key ``_ddo_list`` uses) without buffering
    or sorting; atomic items are tallied so the caller can reproduce
    the XPTY0018 mixed-sequence check after the drain."""

    def __init__(self, seen: str, nodes: str, atoms: str):
        self.seen = seen
        self.nodes = nodes
        self.atoms = atoms

    def item(self, em, code):
        t = em._as_local(code)
        with em.block(f"if isinstance({t}, _Node):"):
            k = em.fresh("k")
            em.w(f"{k} = id({t})")
            with em.block(f"if {k} not in {self.seen}:"):
                em.w(f"{self.seen}.add({k})")
                em.w(f"{self.nodes} += 1")
        with em.block("else:"):
            em.w(f"{self.atoms} += 1")


class _ExistsSink:
    def __init__(self, flag: str, token: int):
        self.flag = flag
        self.token = token

    def item(self, em, code):
        em.w(f"{self.flag} = True")
        em.w(f"raise _Early({self.token})")


class _EBVSink:
    """Generic effective-boolean-value accumulation.

    The second-item check precedes the node check: a node as the
    *second* item alongside a non-node first is still err:FORG0006,
    exactly as :func:`effective_boolean_value` raises it.
    """

    def __init__(self, result: str, first: str, token: int):
        self.result = result
        self.first = first
        self.token = token

    def item(self, em, code):
        code = em._as_local(code)
        with em.block(f"if {self.first} is not _ABSENT:"):
            em.w('raise _TypeError_("effective boolean value of a '
                 'multi-item atomic sequence", code="FORG0006")')
        with em.block(f"if isinstance({code}, _Node):"):
            em.w(f"{self.result} = True")
            em.w(f"raise _Early({self.token})")
        em.w(f"{self.first} = {code}")


class _SingletonAtomSink:
    """Streaming ``_opt_atomic_value``: err:XPTY0004 the moment a
    second atomized value appears."""

    def __init__(self, var: str):
        self.var = var

    def item(self, em, code):
        code = em._as_local(code)
        t = em.fresh("t")
        with em.block(f"for {t} in _atomize_item({code}):"):
            with em.block(f"if {self.var} is not None:"):
                em.w('raise _TypeError_("expected at most one atomic '
                     'value", code="XPTY0004")')
            em.w(f"{self.var} = {t}")


class _GCLeftSink:
    """General-comparison left loop: lazy, early-exit on first match."""

    def __init__(self, result: str, right_list: str, value_op: str, token: int):
        self.result = result
        self.right_list = right_list
        self.value_op = value_op
        self.token = token

    def item(self, em, code):
        code = em._as_local(code)
        a = em.fresh("a")
        with em.block(f"for {a} in _atomize_item({code}):"):
            b = em.fresh("b")
            with em.block(f"for {b} in {self.right_list}:"):
                with em.block(
                        f"if _general_pair({self.value_op!r}, {a}, {b}):"):
                    em.w(f"{self.result} = True")
                    em.w(f"raise _Early({self.token})")


class _NthSink:
    """Static-index filter ``base[N]``: lazy early exit at the Nth item."""

    def __init__(self, counter: str, index: int, out, token: int):
        self.counter = counter
        self.index = index
        self.out = out
        self.token = token

    def item(self, em, code):
        code = em._as_local(code)
        em.w(f"{self.counter} += 1")
        with em.block(f"if {self.counter} == {self.index}:"):
            self.out.item(em, code)
            em.w(f"raise _Early({self.token})")


class _QuantSink:
    """some/every loop body: EBV the condition, early-exit on decision."""

    def __init__(self, expr: ast.Quantified, flag: str, token: int, parent):
        self.expr = expr
        self.flag = flag
        self.token = token
        self.parent = parent

    def item(self, em, code):
        item = em._as_local(code)
        with em.under(self.parent):
            with em.bound(self.expr.var, item, "item"):
                holds = em._emit_ebv(self.expr.cond)
        if self.expr.kind == "some":
            with em.block(f"if {holds}:"):
                em.w(f"{self.flag} = True")
                em.w(f"raise _Early({self.token})")
        else:
            with em.block(f"if not {holds}:"):
                em.w(f"{self.flag} = False")
                em.w(f"raise _Early({self.token})")


class _ForSink:
    """ForExpr body: cancellation poll, bind, emit body into the outer
    sink — the whole-FLWOR fusion workhorse (a normalized FLWOR is a
    chain of ForExpr/LetExpr/IfExpr nodes, so the nested sinks flatten
    it into one loop nest)."""

    def __init__(self, expr: ast.ForExpr, out, pos_counter, parent):
        self.expr = expr
        self.out = out
        self.pos_counter = pos_counter
        self.parent = parent

    def item(self, em, code):
        item = em._as_local(code)
        with em.block("if _tok is not None:"):
            em.w("_tok.check()")
        with em.under(self.parent):
            if self.pos_counter is None:
                with em.bound(self.expr.var, item, "item"):
                    em.emit(self.expr.body, self.out)
            else:
                em.w(f"{self.pos_counter} += 1")
                pv = em.fresh("pv")
                em.w(f"{pv} = _integer({self.pos_counter})")
                with em.bound(self.expr.var, item, "item"), \
                        em.bound(self.expr.pos_var, pv, "item"):
                    em.emit(self.expr.body, self.out)


class _FilterSink:
    """Generic filter: per-item poll, local focus, materialized
    predicate through ``_filter_keep``."""

    def __init__(self, expr: ast.Filter, out, pos_counter, parent):
        self.expr = expr
        self.out = out
        self.pos_counter = pos_counter
        self.parent = parent

    def item(self, em, code):
        item = em._as_local(code)
        with em.block("if _tok is not None:"):
            em.w("_tok.check()")
        em.w(f"{self.pos_counter} += 1")
        with em.under(self.parent):
            em._emit_predicate_keep(self.expr.predicate, item,
                                    self.pos_counter, "0", item, self.out)


class _FusedFilterSink:
    """Streaming fused step+filter candidate: position counter plus an
    inline predicate, no candidate list (predicate proven last()-free)."""

    def __init__(self, predicate, pos_counter: str, out, parent):
        self.predicate = predicate
        self.pos_counter = pos_counter
        self.out = out
        self.parent = parent

    def item(self, em, code):
        cand = em._as_local(code)
        em.w(f"{self.pos_counter} += 1")
        with em.under(self.parent):
            em._emit_predicate_keep(self.predicate, cand, self.pos_counter,
                                    "0", cand, self.out)


class _PathSink:
    """PathExpr per-left-item body: node check, poll, focus, right side.

    ``pos_counter`` is None when the right side never observes the
    outer focus position (a bare step, or a fused step+filter whose
    predicate sees its own per-candidate focus) — no counter is
    maintained in that case.  The XPTY0019 node guard is elided when
    the left producer yields only nodes."""

    def __init__(self, expr: ast.PathExpr, out, pos_counter, parent):
        self.expr = expr
        self.out = out
        self.pos_counter = pos_counter
        self.parent = parent

    def item(self, em, code):
        item = em._as_local(code)
        if not _yields_only_nodes(self.expr.left):
            with em.block(f"if not isinstance({item}, _Node):"):
                em.w('raise _TypeError_("path step applied to a non-node", '
                     'code="XPTY0019")')
        with em.block("if _tok is not None:"):
            em.w("_tok.check()")
        if self.pos_counter is not None:
            em.w(f"{self.pos_counter} += 1")
        with em.under(self.parent):
            em._emit_path_right(self.expr.right, item,
                                self.pos_counter or "0", self.out)


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class SourcePlanCompiler:
    """Compiles a core expression tree to generated Python source.

    Owns a :class:`CodeGenerator` for closure fallbacks and shares its
    operator counter and PlanNode stack, so the plan tree interleaves
    fused and closure operators with consistent ids; the root region is
    hooked through the same guarded profiler check as every closure
    operator, which keeps EXPLAIN ANALYZE item counts comparable
    across backends.
    """

    def __init__(self, static_ctx: StaticContext, instrument: bool = True,
                 executor=None, catalog=None):
        self.ctx = static_ctx
        self.instrument = instrument
        self.cgen = CodeGenerator(static_ctx, instrument=instrument,
                                  executor=executor, catalog=catalog,
                                  batch_size=0)
        self.env: dict[str, Any] = dict(_BASE_ENV)
        #: in-scope variables: QName -> (local name, "item" | "seq")
        self.scope: dict[QName, tuple[str, str]] = {}
        #: local focus: None (ambient dctx focus) or a (item, position,
        #: size) triple of identifiers / integer literals
        self.focus: tuple[str, str, str] | None = None
        self._functions: list[dict] = []
        self._cur: dict | None = None
        self._counter = 0
        self._early_counter = 0
        self._const_ids: dict[tuple[str, int], str] = {}
        #: the emitted module text (set by compile_root)
        self.generated_source: str | None = None
        self.filename: str | None = None

    @property
    def plan_tree(self):
        return self.cgen.plan_tree

    # -- text emission -----------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def w(self, line: str) -> None:
        cur = self._cur
        cur["lines"].append("    " * cur["indent"] + line)

    @contextmanager
    def block(self, header: str | None = None):
        if header is not None:
            self.w(header)
        cur = self._cur
        cur["indent"] += 1
        mark = len(cur["lines"])
        try:
            yield
        finally:
            if len(cur["lines"]) == mark:
                self.w("pass")
            cur["indent"] -= 1

    @contextmanager
    def function(self, name: str, params: list[str]):
        rec = {"lines": [f"def {name}({', '.join(params)}):"], "indent": 1}
        self._functions.append(rec)
        prev, self._cur = self._cur, rec
        try:
            yield
        finally:
            self._cur = prev

    @contextmanager
    def early(self):
        """An early-exit consumption site: yields its token; sinks raise
        ``_Early(token)`` and foreign tokens are re-raised onward."""
        self._early_counter += 1
        token = self._early_counter
        with self.block("try:"):
            yield token
        ex = f"_ex{token}"
        with self.block(f"except _Early as {ex}:"):
            with self.block(f"if {ex}.args[0] != {token}:"):
                self.w("raise")

    def const(self, value: Any, prefix: str = "k") -> str:
        key = (prefix, id(value))
        name = self._const_ids.get(key)
        if name is None:
            name = self.fresh(prefix)
            self._const_ids[key] = name
            self.env[name] = value
        return name

    def _as_local(self, code: str) -> str:
        """Pin a produced expression to a temp (producers call this so
        sinks may duplicate/discard the code string safely)."""
        if code.isidentifier():
            return code
        tmp = self.fresh("t")
        self.w(f"{tmp} = {code}")
        return tmp

    # -- scope / focus -----------------------------------------------------

    @contextmanager
    def bound(self, var: QName, local: str, kind: str):
        had = var in self.scope
        old = self.scope.get(var)
        self.scope[var] = (local, kind)
        try:
            yield
        finally:
            if had:
                self.scope[var] = old
            else:
                del self.scope[var]

    @contextmanager
    def focused(self, item: str, position: str, size: str):
        old = self.focus
        self.focus = (item, position, size)
        try:
            yield
        finally:
            self.focus = old

    # -- plan-tree bookkeeping ---------------------------------------------

    def _pnode(self, expr, tag: str = "fused"):
        if not self.instrument:
            return None
        from repro.observability.explain import PlanNode

        node = PlanNode.for_expr(self.cgen._op_counter, expr)
        self.cgen._op_counter += 1
        node.info["codegen"] = tag
        stack = self.cgen._node_stack
        if stack:
            stack[-1].children.append(node)
        elif self.cgen.plan_tree is None:
            self.cgen.plan_tree = node
        return node

    @contextmanager
    def pnode(self, expr, tag: str = "fused"):
        node = self._pnode(expr, tag)
        if node is None:
            yield None
            return
        self.cgen._node_stack.append(node)
        try:
            yield node
        finally:
            self.cgen._node_stack.pop()

    @contextmanager
    def under(self, node):
        """Re-enter a previously created PlanNode (sink bodies run while
        the producer's subtree is on the stack; this restores nesting)."""
        if node is None:
            yield
            return
        self.cgen._node_stack.append(node)
        try:
            yield
        finally:
            self.cgen._node_stack.pop()

    def _here(self):
        stack = self.cgen._node_stack
        return stack[-1] if stack else None

    # -- eligibility ---------------------------------------------------------

    def _eligible(self, expr) -> bool:
        """Can this instance be emitted with identical semantics?

        Mirrors ``CodeGenerator._batch_eligible`` plus the source
        backend's own constraints; anything else crosses to the closure
        interpreter via :meth:`_emit_fallback`.
        """
        kind = type(expr).__name__
        if kind in ("SequenceExpr", "Arithmetic"):
            # with an executor attached the closure compiler may form
            # parallel groups for these — keep that path
            return self.cgen.executor is None
        if kind == "Filter":
            return not uses_last(expr.predicate)
        if kind == "PathExpr":
            right = expr.right
            if isinstance(right, ast.Step):
                return True
            if isinstance(right, ast.Filter) and isinstance(right.base, ast.Step):
                # fused step+filter: candidates are per-parent, so
                # position()/last() in the predicate stay local
                return True
            return not uses_last(right)
        if kind == "FunctionCall":
            if self.cgen.executor is not None:
                return False  # eager builtins may parallelize their args
            if expr.name.uri in (XS_NS, XDT_NS):
                atype = self.ctx.lookup_type(expr.name)
                return isinstance(atype, T.AtomicType) and len(expr.args) == 1
            builtin = fnlib.lookup(expr.name, len(expr.args))
            if builtin is None:
                return False  # user functions keep the closure convention
            if builtin.lazy:
                return len(expr.args) == 1 and \
                    expr.name.local in ("count", "exists", "empty",
                                        "not", "boolean")
            return True
        return True

    # -- dispatch ------------------------------------------------------------

    def emit(self, expr, sink) -> None:
        method = getattr(self, f"_e_{type(expr).__name__}", None)
        if method is None or not self._eligible(expr):
            self._emit_fallback(expr, sink)
            return
        with self.pnode(expr):
            method(expr, sink)

    def _dispatch(self, expr, sink) -> None:
        """Dispatch without registering a PlanNode (the root region's
        node is created by compile_root)."""
        method = getattr(self, f"_e_{type(expr).__name__}", None)
        if method is None or not self._eligible(expr):
            self._emit_fallback(expr, sink)
        else:
            method(expr, sink)

    def _emit_fallback(self, expr, sink) -> None:
        """The source/closure seam: closure-compile ``expr`` and iterate
        it with the generated scope and focus transferred."""
        stack = self.cgen._node_stack
        before = len(stack[-1].children) if stack else 0
        plan = self.cgen.compile(expr)
        if self.instrument and stack and len(stack[-1].children) > before:
            stack[-1].children[-1].info.setdefault("codegen", "closure")
        plan_const = self.const(plan, "c")
        pairs = []
        for var, (local, kind) in self.scope.items():
            qn = self.const(var, "qn")
            value = f"({local},)" if kind == "item" else local
            pairs.append(f"({qn}, {value})")
        if not pairs:
            bindings = "()"
        elif len(pairs) == 1:
            bindings = f"({pairs[0]},)"
        else:
            bindings = "(" + ", ".join(pairs) + ")"
        focus = "None" if self.focus is None else \
            f"({self.focus[0]}, {self.focus[1]}, {self.focus[2]})"
        t = self.fresh("t")
        with self.block(f"for {t} in _fb({plan_const}, dctx, {bindings}, "
                        f"{focus}):"):
            sink.item(self, t)

    # -- sub-regions ---------------------------------------------------------

    def _subregion(self, expr) -> str:
        """Emit ``expr`` as its own generator function; returns the call
        expression.  Captured scope locals (and identifier focus parts)
        pass as parameters under their own names, so the scope map and
        focus stay valid inside."""
        name = self.fresh("r")
        captured: list[str] = []
        for local, _kind in self.scope.values():
            if local not in captured:
                captured.append(local)
        if self.focus is not None:
            for part in self.focus:
                if part.isidentifier() and part not in captured:
                    captured.append(part)
        with self.function(name, ["dctx"] + captured):
            self.w("_tok = dctx._shared.cancellation")
            self.emit(expr, _YieldSink())
            self.w("return")
            self.w("yield None")
        args = "".join(", " + c for c in captured)
        return f"{name}(dctx{args})"

    # -- scalar emission helpers ---------------------------------------------

    def _emit_ebv(self, expr) -> str:
        """Emit the effective boolean value of ``expr`` into a plain
        Python bool local; statically-boolean shapes skip the generic
        first/second-item machinery."""
        if isinstance(expr, ast.AndExpr):
            with self.pnode(expr):
                left = self._emit_ebv(expr.left)
                out = self.fresh("b")
                self.w(f"{out} = False")
                with self.block(f"if {left}:"):
                    right = self._emit_ebv(expr.right)
                    self.w(f"{out} = {right}")
            return out
        if isinstance(expr, ast.OrExpr):
            with self.pnode(expr):
                left = self._emit_ebv(expr.left)
                out = self.fresh("b")
                self.w(f"{out} = True")
                with self.block(f"if not {left}:"):
                    right = self._emit_ebv(expr.right)
                    self.w(f"{out} = {right}")
            return out
        if isinstance(expr, ast.IfExpr):
            with self.pnode(expr):
                cond = self._emit_ebv(expr.cond)
                out = self.fresh("b")
                with self.block(f"if {cond}:"):
                    then = self._emit_ebv(expr.then)
                    self.w(f"{out} = {then}")
                with self.block("else:"):
                    orelse = self._emit_ebv(expr.orelse)
                    self.w(f"{out} = {orelse}")
            return out
        if isinstance(expr, ast.Quantified):
            with self.pnode(expr):
                return self._emit_quantified_flag(expr)
        if isinstance(expr, ast.Comparison):
            with self.pnode(expr):
                if expr.family == "general":
                    return self._emit_general(expr)
                if expr.family == "value":
                    a = self._emit_atom_opt(expr.left)
                    b = self._emit_atom_opt(expr.right)
                    out = self.fresh("b")
                    self.w(f"{out} = False")
                    with self.block(f"if {a} is not None and "
                                    f"{b} is not None:"):
                        self.w(f"{out} = _value_compare({expr.op!r}, "
                               f"{a}, {b})")
                    return out
                result = self._emit_node_compare(expr)
                out = self.fresh("b")
                self.w(f"{out} = bool({result})")  # None (empty) -> False
                return out
        if isinstance(expr, ast.FunctionCall) and expr.name.uri == FN_NS \
                and len(expr.args) == 1 \
                and expr.name.local in _EBV_FUSED_BUILTINS \
                and fnlib.lookup(expr.name, 1) is not None:
            local = expr.name.local
            with self.pnode(expr):
                if local == "boolean":
                    return self._emit_ebv(expr.args[0])
                if local == "exists":
                    return self._emit_exists(expr.args[0])
                if local == "not":
                    inner = self._emit_ebv(expr.args[0])
                    out = self.fresh("b")
                    self.w(f"{out} = not {inner}")
                    return out
                flag = self._emit_exists(expr.args[0])
                out = self.fresh("b")
                self.w(f"{out} = not {flag}")
                return out
        if isinstance(expr, ast.Literal):
            with self.pnode(expr):
                out = self.fresh("b")
                self.w(f"{out} = _ebv_atom({self.const(expr.value)})")
            return out
        if _nodes_only_path(expr):
            # nodes-only sequences: EBV is True exactly when non-empty
            # (first item decides; FORG0006 cannot arise), so exist —
            # and dedup/sort is unobservable, so the DDO peels off
            return self._emit_exists(_peel_ddo(expr))

        result = self.fresh("b")
        first = self.fresh("v")
        self.w(f"{result} = False")
        self.w(f"{first} = _ABSENT")
        with self.early() as token:
            self.emit(expr, _EBVSink(result, first, token))
            with self.block(f"if {first} is not _ABSENT:"):
                self.w(f"{result} = _ebv_atom({first})")
        return result

    def _emit_exists(self, expr) -> str:
        flag = self.fresh("b")
        self.w(f"{flag} = False")
        with self.early() as token:
            self.emit(expr, _ExistsSink(flag, token))
        return flag

    def _emit_count(self, expr) -> str:
        counter = self.fresh("n")
        self.w(f"{counter} = 0")
        self.emit(expr, _CountSink(counter))
        return counter

    def _emit_general(self, expr: ast.Comparison) -> str:
        """General comparison: right buffered first (empty right short-
        circuits to False without touching left), left lazy with
        early exit — exactly :func:`general_compare`."""
        value_op = _GENERAL_TO_VALUE[expr.op]
        right_list = self.fresh("r")
        self.w(f"{right_list} = []")
        self.emit(expr.right, _AtomizeSink(right_list))
        result = self.fresh("b")
        self.w(f"{result} = False")
        with self.block(f"if {right_list}:"):
            with self.early() as token:
                self.emit(expr.left,
                          _GCLeftSink(result, right_list, value_op, token))
        return result

    def _emit_node_compare(self, expr: ast.Comparison) -> str:
        """node/order comparison into a local holding True/False/None.

        The left operand drains and validates before the right is
        evaluated, matching closure argument order."""
        fn = "_node_compare" if expr.family == "node" else "_order_compare"
        la = self.fresh("l")
        self.w(f"{la} = []")
        self.emit(expr.left, _CollectSink(la))
        na = self.fresh("nd")
        self.w(f"{na} = _opt_single_node({la})")
        lb = self.fresh("l")
        self.w(f"{lb} = []")
        self.emit(expr.right, _CollectSink(lb))
        nb = self.fresh("nd")
        self.w(f"{nb} = _opt_single_node({lb})")
        result = self.fresh("cmp")
        self.w(f"{result} = {fn}({expr.op!r}, {na}, {nb})")
        return result

    def _emit_atom_opt(self, expr) -> str:
        """Zero-or-one atomized value (streaming err:XPTY0004 on a
        second value, like ``_opt_atomic_value``)."""
        var = self.fresh("v")
        self.w(f"{var} = None")
        self.emit(expr, _SingletonAtomSink(var))
        return var

    def _emit_int_opt(self, expr, what: str) -> str:
        """Optional integer operand; drains fully before validating,
        like ``_opt_integer`` (always a local, never a literal)."""
        lst = self.fresh("q")
        self.w(f"{lst} = []")
        self.emit(expr, _AtomizeSink(lst))
        out = self.fresh("n")
        self.w(f"{out} = _opt_integer({lst}, {what!r})")
        return out

    def _emit_quantified_flag(self, expr: ast.Quantified) -> str:
        is_some = expr.kind == "some"
        flag = self.fresh("b")
        self.w(f"{flag} = {not is_some}")
        parent = self._here()
        with self.early() as token:
            self.emit(expr.seq, _QuantSink(expr, flag, token, parent))
        return flag

    def _context_item(self) -> str:
        if self.focus is not None:
            return self.focus[0]
        ci = self.fresh("ci")
        self.w(f"{ci} = dctx.context_item()")
        return ci

    # -- expression emitters --------------------------------------------------

    def _e_Literal(self, expr: ast.Literal, sink) -> None:
        sink.item(self, self.const(expr.value))

    def _e_EmptySequence(self, expr, sink) -> None:
        pass

    def _e_VarRef(self, expr: ast.VarRef, sink) -> None:
        binding = self.scope.get(expr.name)
        if binding is not None:
            local, kind = binding
            if kind == "item":
                sink.item(self, local)
            else:
                t = self.fresh("t")
                with self.block(f"for {t} in {local}:"):
                    sink.item(self, t)
            return
        qn = self.const(expr.name, "qn")
        v = self.fresh("v")
        self.w(f"{v} = dctx.variable({qn})")
        with self.block(f"if not isinstance({v}, (list, tuple, "
                        f"_BufferedSequence)):"):
            self.w(f"{v} = ({v},)")
        t = self.fresh("t")
        with self.block(f"for {t} in {v}:"):
            sink.item(self, t)

    def _e_ContextItem(self, expr, sink) -> None:
        sink.item(self, self._context_item())

    def _e_SequenceExpr(self, expr: ast.SequenceExpr, sink) -> None:
        for item in expr.items:
            self.emit(item, sink)

    def _e_RangeExpr(self, expr: ast.RangeExpr, sink) -> None:
        low = self._emit_int_opt(expr.low, "range start")
        high = self._emit_int_opt(expr.high, "range end")
        with self.block(f"if {low} is not None and {high} is not None:"):
            i = self.fresh("i")
            with self.block(f"for {i} in range({low}, {high} + 1):"):
                t = self.fresh("t")
                self.w(f"{t} = _integer({i})")
                sink.item(self, t)

    # -- binding forms ---------------------------------------------------------

    def _e_LetExpr(self, expr: ast.LetExpr, sink) -> None:
        # lazy binding: the value is a sub-region generator behind a
        # BufferedSequence — pulled at most once, or never if unused
        call = self._subregion(expr.value)
        binding = self.fresh("let")
        self.w(f"{binding} = _BufferedSequence({call}, cancellation=_tok)")
        with self.bound(expr.var, binding, "seq"):
            self.emit(expr.body, sink)

    def _e_ForExpr(self, expr: ast.ForExpr, sink) -> None:
        pos_counter = None
        if expr.pos_var is not None:
            pos_counter = self.fresh("p")
            self.w(f"{pos_counter} = 0")
        self.emit(expr.seq, _ForSink(expr, sink, pos_counter, self._here()))

    def _e_Quantified(self, expr: ast.Quantified, sink) -> None:
        flag = self._emit_quantified_flag(expr)
        t = self.fresh("t")
        self.w(f"{t} = _boolean({flag})")
        sink.item(self, t)

    def _e_IfExpr(self, expr: ast.IfExpr, sink) -> None:
        cond = self._emit_ebv(expr.cond)
        with self.block(f"if {cond}:"):
            self.emit(expr.then, sink)
        with self.block("else:"):
            self.emit(expr.orelse, sink)

    # -- logic / comparison / arithmetic --------------------------------------

    def _e_AndExpr(self, expr: ast.AndExpr, sink) -> None:
        left = self._emit_ebv(expr.left)
        out = self.fresh("b")
        self.w(f"{out} = False")
        with self.block(f"if {left}:"):
            right = self._emit_ebv(expr.right)
            self.w(f"{out} = {right}")
        t = self.fresh("t")
        self.w(f"{t} = _boolean({out})")
        sink.item(self, t)

    def _e_OrExpr(self, expr: ast.OrExpr, sink) -> None:
        left = self._emit_ebv(expr.left)
        out = self.fresh("b")
        self.w(f"{out} = True")
        with self.block(f"if not {left}:"):
            right = self._emit_ebv(expr.right)
            self.w(f"{out} = {right}")
        t = self.fresh("t")
        self.w(f"{t} = _boolean({out})")
        sink.item(self, t)

    def _e_Comparison(self, expr: ast.Comparison, sink) -> None:
        if expr.family == "general":
            result = self._emit_general(expr)
            t = self.fresh("t")
            self.w(f"{t} = _boolean({result})")
            sink.item(self, t)
            return
        if expr.family == "value":
            a = self._emit_atom_opt(expr.left)
            b = self._emit_atom_opt(expr.right)
            with self.block(f"if {a} is not None and {b} is not None:"):
                t = self.fresh("t")
                self.w(f"{t} = _boolean(_value_compare({expr.op!r}, "
                       f"{a}, {b}))")
                sink.item(self, t)
            return
        result = self._emit_node_compare(expr)
        with self.block(f"if {result} is not None:"):
            t = self.fresh("t")
            self.w(f"{t} = _boolean({result})")
            sink.item(self, t)

    def _e_Arithmetic(self, expr: ast.Arithmetic, sink) -> None:
        a = self._emit_atom_opt(expr.left)
        b = self._emit_atom_opt(expr.right)
        result = self.fresh("t")
        self.w(f"{result} = _arith({expr.op!r}, {a}, {b})")
        with self.block(f"if {result} is not None:"):
            sink.item(self, result)

    def _e_UnaryExpr(self, expr: ast.UnaryExpr, sink) -> None:
        value = self._emit_atom_opt(expr.operand)
        fn = "_negate" if expr.op == "-" else "_uplus"
        result = self.fresh("t")
        self.w(f"{result} = {fn}({value})")
        with self.block(f"if {result} is not None:"):
            sink.item(self, result)

    def _e_SetOp(self, expr: ast.SetOp, sink) -> None:
        # left is drained and node-validated before right evaluates
        la = self.fresh("l")
        self.w(f"{la} = []")
        self.emit(expr.left, _CollectSink(la))
        self.w(f"{la} = _all_nodes({la}, {expr.op!r})")
        lb = self.fresh("l")
        self.w(f"{lb} = []")
        self.emit(expr.right, _CollectSink(lb))
        self.w(f"{lb} = _all_nodes({lb}, {expr.op!r})")
        t = self.fresh("t")
        with self.block(f"for {t} in _set_result({expr.op!r}, {la}, {lb}):"):
            sink.item(self, t)

    # -- paths ------------------------------------------------------------------

    def _e_RootExpr(self, expr, sink) -> None:
        ci = self._context_item()
        with self.block(f"if not isinstance({ci}, _Node):"):
            self.w('raise _TypeError_("\'/\' requires a node context item", '
                   'code="XPDY0050")')
        t = self.fresh("t")
        self.w(f"{t} = {ci}.root()")
        sink.item(self, t)

    def _e_Step(self, expr: ast.Step, sink) -> None:
        ci = self._context_item()
        with self.block(f"if not isinstance({ci}, _Node):"):
            self.w(f'raise _TypeError_("axis step {expr.axis}:: on a '
                   f'non-node item", code="XPTY0020")')
        self._emit_step_walk(expr, ci, sink)

    def _e_PathExpr(self, expr: ast.PathExpr, sink) -> None:
        right = expr.right
        if isinstance(right, ast.Step) or \
                (isinstance(right, ast.Filter) and
                 isinstance(right.base, ast.Step)):
            # neither shape reads the outer focus position: the step
            # walk only needs the context node, and a fused filter's
            # predicate gets its own per-candidate focus
            pos_counter = None
        else:
            pos_counter = self.fresh("i")
            self.w(f"{pos_counter} = 0")
        self.emit(expr.left, _PathSink(expr, sink, pos_counter, self._here()))

    def _emit_path_right(self, right, item: str, pos: str, sink) -> None:
        """The per-left-item right side of a path (focus = left item)."""
        if isinstance(right, ast.Step):
            with self.pnode(right):
                with self.focused(item, pos, "0"):
                    self._emit_step_walk(right, item, sink)
            return
        if isinstance(right, ast.Filter) and isinstance(right.base, ast.Step):
            # fused step+filter: the candidate sequence is per-parent,
            # so position()/last() in the predicate see the item-mode
            # focus over this parent's candidates
            with self.pnode(right) as filter_node:
                step = right.base
                predicate = right.predicate
                if not isinstance(predicate, ast.Literal) and \
                        not uses_last(predicate):
                    # streaming: no candidate list — walk the step and
                    # test each candidate in place
                    cpos = self.fresh("cp")
                    self.w(f"{cpos} = 0")
                    with self.pnode(step):
                        self._emit_step_walk(
                            step, item,
                            _FusedFilterSink(predicate, cpos, sink,
                                             filter_node))
                    return
                candidates = self.fresh("c")
                self.w(f"{candidates} = []")
                with self.pnode(step):
                    self._emit_step_walk(step, item, _CollectSink(candidates))
                if isinstance(predicate, ast.Literal) and \
                        predicate.value.type.derives_from(T.XS_INTEGER):
                    index = int(predicate.value.value)
                    if index >= 1:
                        with self.block(f"if len({candidates}) >= {index}:"):
                            t = self.fresh("t")
                            self.w(f"{t} = {candidates}[{index - 1}]")
                            sink.item(self, t)
                    return
                size = self.fresh("cs")
                self.w(f"{size} = len({candidates})")
                cpos = self.fresh("cp")
                cand = self.fresh("cc")
                with self.block(f"for {cpos}, {cand} in "
                                f"enumerate({candidates}, 1):"):
                    self._emit_predicate_keep(predicate, cand, cpos, size,
                                              cand, sink)
            return
        # generic right side (eligibility proved it never reads last())
        with self.focused(item, pos, "0"):
            self.emit(right, sink)

    def _emit_predicate_keep(self, predicate, item: str, pos: str, size: str,
                             keep: str, sink) -> None:
        """Emit "does ``item`` at ``pos`` satisfy ``predicate``; if so
        feed ``keep`` to the sink" with the item-mode decision rules."""
        if _static_boolean(predicate) or _nodes_only_path(predicate):
            # boolean singletons never take _filter_keep's numeric
            # branch, and nodes-only sequences decide on existence —
            # either way the EBV emission applies (with its early exit)
            with self.focused(item, pos, size):
                holds = self._emit_ebv(predicate)
            with self.block(f"if {holds}:"):
                sink.item(self, keep)
            return
        result = self.fresh("pr")
        self.w(f"{result} = []")
        with self.focused(item, pos, size):
            self.emit(predicate, _CollectSink(result))
        with self.block(f"if _filter_keep({result}, {pos}):"):
            sink.item(self, keep)

    def _e_Filter(self, expr: ast.Filter, sink) -> None:
        predicate = expr.predicate
        if isinstance(predicate, ast.Literal) and \
                predicate.value.type.derives_from(T.XS_INTEGER):
            index = int(predicate.value.value)
            if index < 1:
                return  # statically empty; the base is never evaluated
            counter = self.fresh("n")
            self.w(f"{counter} = 0")
            with self.early() as token:
                self.emit(expr.base, _NthSink(counter, index, sink, token))
            return
        pos_counter = self.fresh("i")
        self.w(f"{pos_counter} = 0")
        self.emit(expr.base,
                  _FilterSink(expr, sink, pos_counter, self._here()))

    def _e_DDO(self, expr: ast.DDO, sink) -> None:
        if isinstance(sink, _CountSink):
            # count(DDO(...)) observes only the post-dedup cardinality,
            # so the document-order sort is unobservable: count distinct
            # nodes by identity (same key _ddo_list dedups on) as they
            # stream past, keeping the mixed-sequence check and the
            # ddo_sorts accounting of the materialized path
            seen = self.fresh("dd")
            nodes = self.fresh("dn")
            atoms = self.fresh("da")
            self.w(f"{seen} = set()")
            self.w(f"{nodes} = 0")
            self.w(f"{atoms} = 0")
            self.emit(expr.operand,
                      _DistinctCountSink(seen, nodes, atoms))
            with self.block(f"if {nodes} and {atoms}:"):
                self.w("raise _TypeError_("
                       "'path result mixes nodes and atomic values', "
                       "code='XPTY0018')")
            with self.block(f"if {nodes}:"):
                self.w("dctx.count('ddo_sorts')")
            self.w(f"{sink.counter} += {nodes} + {atoms}")
            return
        items = self.fresh("l")
        self.w(f"{items} = []")
        self.emit(expr.operand, _CollectSink(items))
        t = self.fresh("t")
        with self.block(f"for {t} in _ddo_list({items}, dctx):"):
            sink.item(self, t)

    def _e_OrderedExpr(self, expr: ast.OrderedExpr, sink) -> None:
        self.emit(expr.operand, sink)

    # -- axis-step loops --------------------------------------------------------

    def _emit_step_walk(self, step: ast.Step, node: str, sink) -> None:
        """One axis step over the node in ``node``, streamed to the sink.

        The hot shapes (the same set ``_compile_step_fn`` specializes:
        child/descendant name tests, ``descendant-or-self::node()``,
        attribute name tests, ``child::text()``) are inlined as flat
        loops; anything else calls a generic kernel constant.  Guard
        conditions and traversal order mirror ``_compile_step_fn``
        line for line.
        """
        axis, test = step.axis, step.test
        kind, name = test.kind, test.name
        plain = test.type_name is None and test.pi_target is None

        def name_cond(var: str) -> str:
            conds = []
            if name.local != "*":
                conds.append(f"{var}.name.local == {name.local!r}")
            if name.uri != "*":
                conds.append(f"{var}.name.uri == {name.uri!r}")
            return " and ".join(conds) if conds else "True"

        if plain and kind in ("node", "element") and name is not None \
                and axis in ("child", "descendant", "descendant-or-self"):
            if axis == "child":
                c = self.fresh("n")
                with self.block(f"for {c} in {node}.children:"):
                    with self.block(f"if isinstance({c}, _Elem) and "
                                    f"{name_cond(c)}:"):
                        sink.item(self, c)
                return
            if axis == "descendant-or-self":
                with self.block(f"if isinstance({node}, _Elem) and "
                                f"{name_cond(node)}:"):
                    sink.item(self, node)
            stack = self.fresh("st")
            self.w(f"{stack} = list(reversed({node}.children))")
            n = self.fresh("n")
            with self.block(f"while {stack}:"):
                self.w(f"{n} = {stack}.pop()")
                with self.block(f"if isinstance({n}, _Elem):"):
                    with self.block(f"if {name_cond(n)}:"):
                        sink.item(self, n)
                    ch = self.fresh("ch")
                    self.w(f"{ch} = {n}._children")
                    with self.block(f"if {ch}:"):
                        self.w(f"{stack}.extend(reversed({ch}))")
            return

        if plain and kind == "node" and name is None:
            if axis == "child":
                c = self.fresh("n")
                with self.block(f"for {c} in {node}.children:"):
                    sink.item(self, c)
                return
            if axis == "self":
                sink.item(self, node)
                return
            if axis == "descendant-or-self":
                sink.item(self, node)
                stack = self.fresh("st")
                self.w(f"{stack} = list(reversed({node}.children))")
                n = self.fresh("n")
                with self.block(f"while {stack}:"):
                    self.w(f"{n} = {stack}.pop()")
                    sink.item(self, n)
                    ch = self.fresh("ch")
                    self.w(f"{ch} = {n}.children")
                    with self.block(f"if {ch}:"):
                        self.w(f"{stack}.extend(reversed({ch}))")
                return

        if plain and axis == "attribute" and kind in ("node", "attribute") \
                and name is not None:
            a = self.fresh("n")
            with self.block(f"for {a} in {node}.attributes:"):
                with self.block(f"if {name_cond(a)}:"):
                    sink.item(self, a)
            return

        if plain and kind == "text" and axis == "child":
            c = self.fresh("n")
            with self.block(f"for {c} in {node}.children:"):
                with self.block(f"if isinstance({c}, _Text):"):
                    sink.item(self, c)
            return

        kernel = self.const(_compile_step_fn(axis, test), "s")
        t = self.fresh("t")
        with self.block(f"for {t} in {kernel}({node}):"):
            sink.item(self, t)

    # -- function calls ---------------------------------------------------------

    def _e_FunctionCall(self, expr: ast.FunctionCall, sink) -> None:
        name = expr.name
        arity = len(expr.args)

        if name.uri in (XS_NS, XDT_NS):
            # constructor function: a cast (eligibility checked the type)
            atype = self.ctx.lookup_type(name)
            target = self.const(atype, "ty")
            values = self.fresh("q")
            self.w(f"{values} = []")
            self.emit(expr.args[0], _AtomizeSink(values))
            with self.block(f"if {values}:"):
                with self.block(f"if len({values}) > 1:"):
                    self.w('raise _TypeError_("constructor function '
                           'requires one value")')
                v0 = self.fresh("v")
                self.w(f"{v0} = {values}[0]")
                t = self.fresh("t")
                self.w(f"{t} = _AtomicValue(_cast_value({v0}.value, "
                       f"{v0}.type, {target}), {target})")
                sink.item(self, t)
            return

        builtin = fnlib.lookup(name, arity)
        assert builtin is not None  # _eligible guarantees this

        if builtin.lazy:
            # the fused aggregate tails: count/exists/empty/not/boolean
            local = name.local
            arg = expr.args[0]
            t = self.fresh("t")
            if local == "count":
                counter = self._emit_count(arg)
                self.w(f"{t} = _integer({counter})")
            elif local == "exists":
                flag = self._emit_exists(arg)
                self.w(f"{t} = _boolean({flag})")
            elif local == "empty":
                flag = self._emit_exists(arg)
                self.w(f"{t} = _boolean(not {flag})")
            elif local == "not":
                value = self._emit_ebv(arg)
                self.w(f"{t} = _boolean(not {value})")
            else:  # boolean
                value = self._emit_ebv(arg)
                self.w(f"{t} = _boolean({value})")
            sink.item(self, t)
            return

        if not expr.args and name.uri == FN_NS and self.focus is not None:
            # focus accessors read the emitted focus locals directly
            if name.local == "position":
                t = self.fresh("t")
                self.w(f"{t} = _integer({self.focus[1]})")
                sink.item(self, t)
                return
            if name.local == "last" and self.focus[2] != "0":
                t = self.fresh("t")
                self.w(f"{t} = _integer({self.focus[2]})")
                sink.item(self, t)
                return

        # eager builtin: arguments materialize in order, then one call
        arg_lists = []
        for arg in expr.args:
            lst = self.fresh("q")
            self.w(f"{lst} = []")
            self.emit(arg, _CollectSink(lst))
            arg_lists.append(lst)
        impl = self.const(builtin.impl, "f")
        if builtin.context_sensitive and self.focus is not None:
            dctx_expr = self.fresh("fd")
            fi, fp, fs = self.focus
            self.w(f"{dctx_expr} = dctx.with_focus({fi}, {fp}, {fs})")
        else:
            dctx_expr = "dctx"
        args = "".join(", " + lst for lst in arg_lists)
        t = self.fresh("t")
        with self.block(f"for {t} in {impl}({dctx_expr}{args}):"):
            sink.item(self, t)

    # -- entry point ------------------------------------------------------------

    def compile_root(self, expr) -> Plan:
        """Compile ``expr`` to a generated-source plan.

        The returned plan observes the item protocol
        (``plan(dctx) -> Iterator[item]``) and is hooked through the
        profiler exactly like a closure root operator.
        """
        root_node = None
        if self.instrument:
            from repro.observability.explain import PlanNode

            root_node = PlanNode.for_expr(self.cgen._op_counter, expr)
            self.cgen._op_counter += 1
            root_node.info["codegen"] = "source"
            self.cgen.plan_tree = root_node
            self.cgen._node_stack.append(root_node)
        try:
            with self.function("_q0", ["dctx"]):
                self.w("_tok = dctx._shared.cancellation")
                self._dispatch(expr, _YieldSink())
                self.w("return")
                self.w("yield None")
        finally:
            if root_node is not None:
                self.cgen._node_stack.pop()
        fn = self._finish()
        if root_node is None:
            return fn
        op_id = root_node.id

        def plan(dctx, _fn=fn, _op=op_id):
            profiler = dctx._shared.profiler
            if profiler is None:
                return _fn(dctx)
            return profiler.run_operator(_op, _fn, dctx)

        return plan

    def _finish(self) -> Callable[[DynamicContext], Iterator[Any]]:
        lines: list[str] = []
        for rec in self._functions:
            lines.extend(rec["lines"])
            lines.append("")
        source = "\n".join(lines)
        self.generated_source = source
        self.filename = f"<repro-pysource-{next(_source_seq)}>"
        # linecache registration keeps tracebacks and profilers readable
        linecache.cache[self.filename] = (
            len(source), None, source.splitlines(keepends=True), self.filename)
        code = compile(source, self.filename, "exec")
        namespace = dict(self.env)
        exec(code, namespace)
        return namespace["_q0"]


def compile_source_plan(expr, static_ctx: StaticContext | None = None) -> Plan:
    """Convenience: compile a core expression via the source backend."""
    return SourcePlanCompiler(static_ctx or StaticContext()).compile_root(expr)
