"""Code generation: the core expression tree → executable iterator plans.

A *plan* is a closure ``plan(dctx) -> Iterator[item]``.  Generators
give us the pull-based, lazy iterator model of the paper for free:
nothing below a plan runs until a consumer pulls, so top-N,
existential quantification, positional predicates, and even
non-terminating recursive functions behave ("the result of this
program should be: true").

Structure-wise this module is one compiler class with a ``_c_<Node>``
method per core expression kind; the returned closures form the
executable operator tree (the paper's "annotated expression tree →
TokenIterator" step, at item granularity).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.compiler.context import StaticContext
from repro.compiler.parallel import independent_for_clauses, is_parallel_safe
from repro.compiler.sequencetype import SequenceType, resolve_sequence_type
from repro.errors import DynamicError, StaticError, TypeError_, UndefinedNameError
from repro.qname import QName, XS_NS, XDT_NS
from repro.runtime import functions as fnlib
from repro.runtime.arithmetic import arithmetic, negate, unary_plus
from repro.runtime.compare import (
    general_compare,
    node_compare,
    order_compare,
    value_compare,
)
from repro.runtime.constructors import (
    construct_attribute_from_parts,
    construct_comment,
    construct_document,
    construct_element,
    construct_pi,
    construct_text,
)
from repro.runtime.dynamic import DynamicContext
from repro.runtime.ebv import effective_boolean_value
from repro.runtime.iterators import BufferedSequence
from repro.runtime.paths import step_iterator
from repro.xdm.atomize import atomize, string_value_of
from repro.xdm.items import AtomicValue, boolean, integer
from repro.xdm.nodes import AttributeNode, Node
from repro.xdm.order import in_document_order
from repro.xquery import ast
from repro.xsd import types as T
from repro.xsd.casting import CastError, cast_value

Plan = Callable[[DynamicContext], Iterator[Any]]


class CodeGenerator:
    """Compiles core expressions against a static context.

    With ``instrument=True`` (the default) every operator is emitted
    behind a guarded observability hook and registered in a
    :class:`~repro.observability.explain.PlanNode` tree
    (:attr:`plan_tree`).  The hook costs one attribute load and an
    ``is None`` branch per operator *invocation* when no profiler is
    attached — never a per-item cost — so instrumented plans are the
    only kind the engine builds.
    """

    def __init__(self, static_ctx: StaticContext, instrument: bool = True,
                 executor=None, catalog=None, batch_size: int = 0):
        self.ctx = static_ctx
        #: document catalog (``repro.catalog``): AccessPath operators
        #: resolve their posting lists through it at runtime
        self.catalog = catalog
        #: compiled user functions, keyed (name, arity) — fills lazily so
        #: recursive functions terminate compilation
        self._function_plans: dict[tuple[QName, int], Plan] = {}
        self.instrument = instrument
        #: root of the PlanNode tree (instrumented compiles only)
        self.plan_tree = None
        self._node_stack: list = []
        self._op_counter = 0
        #: group executor (``repro.service.executors``): when set,
        #: analysis-proven-independent sibling groups compile to a
        #: ``ParallelSeq`` operator that fans members out through it
        self.executor = executor
        #: block-at-a-time execution: >0 compiles the relational core to
        #: batch operators exchanging lists of about this many items
        #: (``compile_root``); 0 keeps the item-at-a-time pipeline
        self.batch_size = batch_size

    # -- dispatch ---------------------------------------------------------------

    def compile(self, expr: ast.Expr) -> Plan:
        method = getattr(self, f"_c_{type(expr).__name__}", None)
        if method is None:
            raise StaticError(f"no code generation for {type(expr).__name__}")
        if not self.instrument:
            return method(expr)

        from repro.observability.explain import PlanNode

        node = PlanNode.for_expr(self._op_counter, expr)
        self._op_counter += 1
        if self._node_stack:
            self._node_stack[-1].children.append(node)
        elif self.plan_tree is None:
            self.plan_tree = node
        self._node_stack.append(node)
        try:
            plan = method(expr)
        finally:
            self._node_stack.pop()

        op_id = node.id

        def hooked(dctx, _plan=plan, _op=op_id):
            profiler = dctx._shared.profiler
            if profiler is None:
                return _plan(dctx)
            return profiler.run_operator(_op, _plan, dctx)

        return hooked

    # -- batch (block-at-a-time) dispatch ----------------------------------------

    def compile_root(self, expr: ast.Expr) -> Plan:
        """Compile ``expr`` honoring :attr:`batch_size`.

        The engine's entry point: with ``batch_size > 0`` the tree is
        compiled block-at-a-time and the root batch plan is flattened
        back to the item protocol, so results, CompiledQuery, and the
        service layer are oblivious to the execution mode underneath.
        """
        if self.batch_size <= 0:
            return self.compile(expr)
        bplan = self.compile_batch(expr)

        def plan(dctx):
            for batch in bplan(dctx):
                yield from batch
        return plan

    def compile_batch(self, expr: ast.Expr) -> Plan:
        """Compile to a *batch plan*: ``bplan(dctx) -> Iterator[list]``.

        Operators exchange list-backed chunks of about
        :attr:`batch_size` items (a target, not an invariant).  Kinds
        without a ``_b_`` method — or whose instance fails the
        :meth:`_batch_eligible` check — compile item-at-a-time and are
        re-chunked by :meth:`_adapt_item`; the seam is counted as
        ``batch.fallback_item`` and tagged ``batch=item`` in the plan
        tree, so EXPLAIN ANALYZE shows exactly where a plan leaves the
        batched core.
        """
        method = getattr(self, f"_b_{type(expr).__name__}", None)
        if method is None or not self._batch_eligible(expr):
            return self._adapt_item(expr)
        if not self.instrument:
            return method(expr)

        from repro.observability.explain import PlanNode

        node = PlanNode.for_expr(self._op_counter, expr)
        node.info["batch"] = "batch"
        self._op_counter += 1
        if self._node_stack:
            self._node_stack[-1].children.append(node)
        elif self.plan_tree is None:
            self.plan_tree = node
        self._node_stack.append(node)
        try:
            bplan = method(expr)
        finally:
            self._node_stack.pop()

        op_id = node.id

        def hooked(dctx, _bplan=bplan, _op=op_id):
            profiler = dctx._shared.profiler
            if profiler is None:
                return _bplan(dctx)
            return profiler.run_batch_operator(_op, _bplan, dctx)

        return hooked

    def _batch_eligible(self, expr: ast.Expr) -> bool:
        """Can this *instance* run batch-at-a-time with identical semantics?

        Conservative by design: anything that needs the absolute focus
        size (fn:last over a not-yet-drained base) or that would bypass
        the parallel-group machinery falls back to item mode.
        """
        kind = type(expr).__name__
        if kind == "SequenceExpr":
            # with an executor attached, the item compiler may form a
            # ParallelSeq group — keep that path
            return self.executor is None
        if kind == "Filter":
            # running absolute positions work per-block, but last()
            # needs the drained base size the way BufferedSequence
            # provides it lazily in item mode
            return not self._uses_last(expr.predicate)
        if kind == "PathExpr":
            right = expr.right
            if isinstance(right, ast.Step):
                return True
            if isinstance(right, ast.Filter) and isinstance(right.base, ast.Step):
                # fused step+filter: candidate lists are per-parent, so
                # position()/last() inside the predicate stay local
                return True
            return not self._uses_last(right)
        if kind == "FunctionCall":
            if self.executor is not None:
                return False  # eager builtins may parallelize their args
            if expr.name.uri in (XS_NS, XDT_NS):
                return False  # constructor functions: item path handles casts
            builtin = fnlib.lookup(expr.name, len(expr.args))
            if builtin is None:
                return False  # user functions keep the item calling convention
            if builtin.lazy:
                return len(expr.args) == 1 and \
                    expr.name.local in ("count", "exists", "empty")
            return True
        return True

    def _uses_last(self, expr: ast.Expr) -> bool:
        """Does the subtree (conservatively) observe the focus size?

        Shared with the compile-to-source backend: the walk lives in
        :func:`repro.compiler.analysis.uses_last`.
        """
        from repro.compiler.analysis import uses_last

        return uses_last(expr)

    def _adapt_item(self, expr: ast.Expr) -> Plan:
        """The universal fallback: item-compile ``expr``, re-chunk its output."""
        plan = self.compile(expr)
        if self.instrument:
            node = self._node_stack[-1].children[-1] if self._node_stack \
                else self.plan_tree
            if node is not None:
                node.info.setdefault("batch", "item")
        size = self.batch_size

        def bplan(dctx):
            dctx.count("batch.fallback_item")
            buf: list[Any] = []
            append = buf.append
            for item in plan(dctx):
                append(item)
                if len(buf) >= size:
                    yield buf
                    buf = []
                    append = buf.append
            if buf:
                yield buf
        return bplan

    def _fused_node(self, expr: ast.Expr, parent=None):
        """Register a PlanNode for an operator fused into its parent's loop.

        Fused operators never execute as separate closures, so they get
        no hook; the node exists so EXPLAIN still shows the full shape,
        tagged ``batch=fused``.
        """
        if not self.instrument:
            return None
        from repro.observability.explain import PlanNode

        node = PlanNode.for_expr(self._op_counter, expr)
        self._op_counter += 1
        node.info["batch"] = "fused"
        target = parent if parent is not None else \
            (self._node_stack[-1] if self._node_stack else None)
        if target is not None:
            target.children.append(node)
        return node

    # -- primaries ---------------------------------------------------------------

    def _c_Literal(self, expr: ast.Literal) -> Plan:
        value = expr.value

        def plan(dctx):
            yield value
        return plan

    def _c_EmptySequence(self, expr) -> Plan:
        def plan(dctx):
            return iter(())
        return plan

    def _c_VarRef(self, expr: ast.VarRef) -> Plan:
        name = expr.name

        def plan(dctx):
            value = dctx.variable(name)
            if isinstance(value, (list, tuple, BufferedSequence)):
                yield from value
            else:
                yield value
        return plan

    def _c_ContextItem(self, expr) -> Plan:
        def plan(dctx):
            yield dctx.context_item()
        return plan

    # -- parallel groups ---------------------------------------------------------

    def _mark_parallel(self, members: int) -> None:
        """Relabel the current PlanNode as a ParallelSeq operator."""
        if self._node_stack:
            node = self._node_stack[-1]
            node.kind = f"ParallelSeq({node.kind})"
            node.detail = f"ParallelSeq[{members}] {node.detail}"
            if "parallel_group" not in node.annotations:
                node.annotations = node.annotations + ("parallel_group",)

    def _parallel_seq(self, member_plans: list[Plan],
                      eligible: list[bool]) -> Plan:
        """A ParallelSeq operator over ordered sequence members.

        Eligible members fan out through the executor; ineligible ones
        (and members the executor declines) evaluate inline at their
        position, so the merged output order is exactly the sequential
        order.  Stats: ``parallel.groups_run`` on a successful fan-out,
        ``parallel.fallback_sequential`` when the executor declines the
        group, ``parallel.member_fallback`` per declined member.
        """
        executor = self.executor
        fan_out = [i for i, ok in enumerate(eligible) if ok]

        def plan(dctx):
            results = executor.run_group([member_plans[i] for i in fan_out],
                                         dctx)
            if results is None:
                dctx.count("parallel.fallback_sequential")
                for sub in member_plans:
                    yield from sub(dctx)
                return
            dctx.count("parallel.groups_run")
            produced = dict(zip(fan_out, results))
            token = dctx._shared.cancellation
            for i, sub in enumerate(member_plans):
                if token is not None:
                    token.check()
                items = produced.get(i)
                if items is None:
                    if i in produced:
                        dctx.count("parallel.member_fallback")
                    yield from sub(dctx)
                else:
                    yield from items
        return plan

    def _c_SequenceExpr(self, expr: ast.SequenceExpr) -> Plan:
        plans = [self.compile(item) for item in expr.items]
        if self.executor is not None:
            eligible = [is_parallel_safe(item) for item in expr.items]
            if sum(eligible) >= 2:
                self._mark_parallel(sum(eligible))
                return self._parallel_seq(plans, eligible)

        def plan(dctx):
            for sub in plans:
                yield from sub(dctx)
        return plan

    def _c_RangeExpr(self, expr: ast.RangeExpr) -> Plan:
        low_plan = self.compile(expr.low)
        high_plan = self.compile(expr.high)

        def plan(dctx):
            low = _opt_integer(low_plan(dctx), "range start")
            high = _opt_integer(high_plan(dctx), "range end")
            if low is None or high is None:
                return
            for i in range(low, high + 1):
                yield integer(i)
        return plan

    # -- binding forms ---------------------------------------------------------

    def _c_LetExpr(self, expr: ast.LetExpr) -> Plan:
        value_plan = self.compile(expr.value)
        body_plan = self.compile(expr.body)
        var = expr.var

        def plan(dctx):
            # lazy binding: the paper's buffer-iterator-factory pattern —
            # the value is pulled at most once no matter how often $var is used
            binding = BufferedSequence(value_plan(dctx),
                                       cancellation=dctx._shared.cancellation)
            yield from body_plan(dctx.bind(var, binding))
        return plan

    def _c_ForExpr(self, expr: ast.ForExpr) -> Plan:
        seq_plan = self.compile(expr.seq)
        body_plan = self.compile(expr.body)
        var, pos_var = expr.var, expr.pos_var

        if pos_var is None:
            def plan(dctx):
                token = dctx._shared.cancellation
                for item in seq_plan(dctx):
                    if token is not None:
                        token.check()
                    yield from body_plan(dctx.bind(var, (item,)))
        else:
            def plan(dctx):
                token = dctx._shared.cancellation
                for i, item in enumerate(seq_plan(dctx), start=1):
                    if token is not None:
                        token.check()
                    child = dctx.bind_many({var: (item,), pos_var: (integer(i),)})
                    yield from body_plan(child)
        return plan

    def _c_Quantified(self, expr: ast.Quantified) -> Plan:
        seq_plan = self.compile(expr.seq)
        cond_plan = self.compile(expr.cond)
        var = expr.var
        is_some = expr.kind == "some"

        def plan(dctx):
            for item in seq_plan(dctx):
                holds = effective_boolean_value(cond_plan(dctx.bind(var, (item,))))
                if holds and is_some:
                    yield boolean(True)
                    return
                if not holds and not is_some:
                    yield boolean(False)
                    return
            yield boolean(not is_some)
        return plan

    def _c_IfExpr(self, expr: ast.IfExpr) -> Plan:
        cond_plan = self.compile(expr.cond)
        then_plan = self.compile(expr.then)
        else_plan = self.compile(expr.orelse)

        def plan(dctx):
            if effective_boolean_value(cond_plan(dctx)):
                yield from then_plan(dctx)
            else:
                yield from else_plan(dctx)
        return plan

    def _c_Typeswitch(self, expr: ast.Typeswitch) -> Plan:
        operand_plan = self.compile(expr.operand)
        cases: list[tuple[QName | None, SequenceType, Plan]] = []
        for case in expr.cases:
            assert case.seq_type is not None
            cases.append((case.var,
                          resolve_sequence_type(case.seq_type, self.ctx),
                          self.compile(case.body)))
        default_var = expr.default.var
        default_plan = self.compile(expr.default.body)

        def plan(dctx):
            items = list(operand_plan(dctx))
            for var, seq_type, body in cases:
                if seq_type.matches(items):
                    child = dctx.bind(var, items) if var is not None else dctx
                    yield from body(child)
                    return
            child = dctx.bind(default_var, items) if default_var is not None else dctx
            yield from default_plan(child)
        return plan

    # -- FLWOR with order by -----------------------------------------------------

    def _c_FLWOR(self, expr: ast.FLWOR) -> Plan:
        clause_plans: list[tuple[str, QName, QName | None, Plan]] = []
        bound_vars: list[QName] = []
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                clause_plans.append(("for", clause.var, clause.pos_var,
                                     self.compile(clause.expr)))
                bound_vars.append(clause.var)
                if clause.pos_var is not None:
                    bound_vars.append(clause.pos_var)
            else:
                clause_plans.append(("let", clause.var, None, self.compile(clause.expr)))
                bound_vars.append(clause.var)
        where_plan = self.compile(expr.where) if expr.where is not None else None
        group_specs = [(var, self.compile(key)) for var, key in expr.group]
        key_plans = [(self.compile(spec.expr), spec.descending, spec.empty_least)
                     for spec in expr.order]
        ret_plan = self.compile(expr.ret)

        # independent FOR-clause sources form a parallel group: their
        # sequences are prefetched concurrently before tuple formation
        executor = self.executor
        par_indices: list[int] = []
        if executor is not None:
            par_indices = independent_for_clauses(expr)
            if len(par_indices) >= 2:
                self._mark_parallel(len(par_indices))
            else:
                par_indices = []

        def tuples(dctx, depth=0, prefetched=None):
            """Generate the binding-tuple stream (one dctx per tuple)."""
            if depth == len(clause_plans):
                if where_plan is None or effective_boolean_value(where_plan(dctx)):
                    yield dctx
                return
            kind, var, pos_var, sub = clause_plans[depth]
            if kind == "let":
                bound = dctx.bind(var, BufferedSequence(
                    sub(dctx), cancellation=dctx._shared.cancellation))
                yield from tuples(bound, depth + 1, prefetched)
            else:
                source = None
                if prefetched is not None:
                    source = prefetched.get(depth)
                if source is None:
                    source = sub(dctx)
                token = dctx._shared.cancellation
                for i, item in enumerate(source, start=1):
                    if token is not None:
                        token.check()
                    bound = dctx.bind(var, (item,))
                    if pos_var is not None:
                        bound = bound.bind(pos_var, (integer(i),))
                    yield from tuples(bound, depth + 1, prefetched)

        def regroup(rows: list) -> list:
            """The group-by extension: one tuple per distinct key, with
            every pre-grouping variable rebound to its grouped sequence."""
            from repro.runtime.functions.sequences import _distinct_key

            groups: dict[tuple, tuple[list, list]] = {}
            for bound in rows:
                key_items = []
                for _gvar, key_plan in group_specs:
                    values = list(atomize(key_plan(bound)))
                    if len(values) > 1:
                        raise TypeError_("group-by key must be a single atomic value",
                                         code="XPTY0004")
                    key_items.append(values[0] if values else None)
                bucket_key = tuple(
                    _distinct_key(v) if v is not None else ("empty",)
                    for v in key_items)
                groups.setdefault(bucket_key, ([], key_items))[0].append(bound)
            out = []
            for members, key_items in groups.values():
                bindings: dict[QName, Any] = {}
                for var in bound_vars:
                    merged: list[Any] = []
                    for member in members:
                        merged.extend(member.variables.get(var, ()))
                    bindings[var] = merged
                for (gvar, _plan), value in zip(group_specs, key_items):
                    bindings[gvar] = [value] if value is not None else []
                out.append(members[0].bind_many(bindings))
            return out

        def plan(dctx):
            prefetched = None
            if par_indices:
                group = [clause_plans[i][3] for i in par_indices]
                results = executor.run_group(group, dctx)
                if results is None:
                    dctx.count("parallel.fallback_sequential")
                else:
                    dctx.count("parallel.groups_run")
                    prefetched = {}
                    for depth, items in zip(par_indices, results):
                        if items is None:
                            dctx.count("parallel.member_fallback")
                        else:
                            prefetched[depth] = items
            rows = list(tuples(dctx, 0, prefetched))
            if group_specs:
                rows = regroup(rows)
            if key_plans:
                decorated: list[tuple[list, DynamicContext]] = []
                for bound in rows:
                    keys = []
                    for key_plan, _desc, _el in key_plans:
                        values = list(atomize(key_plan(bound)))
                        if len(values) > 1:
                            raise TypeError_(
                                "order-by key must be a single atomic value")
                        keys.append(values[0] if values else None)
                    decorated.append((keys, bound))
                decorated.sort(key=_OrderKey.factory(key_plans))
                rows = [bound for _keys, bound in decorated]
            for bound in rows:
                yield from ret_plan(bound)
        return plan

    # -- type operators ----------------------------------------------------------

    def _c_InstanceOf(self, expr: ast.InstanceOf) -> Plan:
        operand_plan = self.compile(expr.operand)
        seq_type = resolve_sequence_type(expr.seq_type, self.ctx)

        def plan(dctx):
            yield boolean(seq_type.matches(list(operand_plan(dctx))))
        return plan

    def _c_TreatExpr(self, expr: ast.TreatExpr) -> Plan:
        operand_plan = self.compile(expr.operand)
        seq_type = resolve_sequence_type(expr.seq_type, self.ctx)

        def plan(dctx):
            items = list(operand_plan(dctx))
            if not seq_type.matches(items):
                raise TypeError_(f"treat as {seq_type}: value does not conform",
                                 code="XPDY0050")
            yield from items
        return plan

    def _resolve_atomic(self, name: QName) -> T.AtomicType:
        atype = self.ctx.lookup_type(name)
        if atype is None:
            raise StaticError(f"unknown type {name}", code="XPST0051")
        if not isinstance(atype, T.AtomicType):
            raise StaticError(f"{name} is not an atomic type")
        return atype

    def _c_CastExpr(self, expr: ast.CastExpr) -> Plan:
        operand_plan = self.compile(expr.operand)
        target = self._resolve_atomic(expr.type_name)
        optional = expr.optional

        def plan(dctx):
            values = list(atomize(operand_plan(dctx)))
            if not values:
                if optional:
                    return
                raise TypeError_(f"cast as {target}: empty operand", code="XPTY0004")
            if len(values) > 1:
                raise TypeError_("cast requires a single value", code="XPTY0004")
            value = values[0]
            yield AtomicValue(cast_value(value.value, value.type, target), target)
        return plan

    def _c_CastableExpr(self, expr: ast.CastableExpr) -> Plan:
        operand_plan = self.compile(expr.operand)
        target = self._resolve_atomic(expr.type_name)
        optional = expr.optional

        def plan(dctx):
            values = list(atomize(operand_plan(dctx)))
            if not values:
                yield boolean(optional)
                return
            if len(values) > 1:
                yield boolean(False)
                return
            value = values[0]
            try:
                cast_value(value.value, value.type, target)
                yield boolean(True)
            except (CastError, TypeError_):
                yield boolean(False)
        return plan

    def _c_ParamConvert(self, expr: ast.ParamConvert) -> Plan:
        operand_plan = self.compile(expr.operand)
        seq_type = resolve_sequence_type(expr.seq_type, self.ctx)
        role = expr.role

        def plan(dctx):
            yield from _function_convert(operand_plan(dctx), seq_type, role)
        return plan

    def _c_ValidateExpr(self, expr: ast.ValidateExpr) -> Plan:
        operand_plan = self.compile(expr.operand)
        schemas = self.ctx.schemas

        def plan(dctx):
            from repro.runtime.constructors import copy_node
            from repro.xdm.nodes import DocumentNode, ElementNode
            from repro.xsd.validation import validate

            items = list(operand_plan(dctx))
            if len(items) != 1 or not isinstance(items[0], (ElementNode, DocumentNode)):
                raise TypeError_("validate requires a single element or document node",
                                 code="XQTY0030")
            copy = copy_node(items[0])
            element = copy.document_element() if isinstance(copy, DocumentNode) else copy
            schema = None
            if element is not None:
                for candidate in schemas.values():
                    if candidate.element_decl(element.name) is not None:
                        schema = candidate
                        break
            validate(copy, schema)
            yield copy
        return plan

    # -- logic / comparison / arithmetic ---------------------------------------

    def _c_AndExpr(self, expr: ast.AndExpr) -> Plan:
        left_plan = self.compile(expr.left)
        right_plan = self.compile(expr.right)

        def plan(dctx):
            yield boolean(effective_boolean_value(left_plan(dctx))
                          and effective_boolean_value(right_plan(dctx)))
        return plan

    def _c_OrExpr(self, expr: ast.OrExpr) -> Plan:
        left_plan = self.compile(expr.left)
        right_plan = self.compile(expr.right)

        def plan(dctx):
            yield boolean(effective_boolean_value(left_plan(dctx))
                          or effective_boolean_value(right_plan(dctx)))
        return plan

    def _c_Comparison(self, expr: ast.Comparison) -> Plan:
        left_plan = self.compile(expr.left)
        right_plan = self.compile(expr.right)
        op, family = expr.op, expr.family

        if family == "general":
            def plan(dctx):
                yield boolean(general_compare(op, atomize(left_plan(dctx)),
                                              atomize(right_plan(dctx))))
            return plan

        if family == "value":
            def plan(dctx):
                a = _opt_atomic_value(left_plan(dctx))
                b = _opt_atomic_value(right_plan(dctx))
                if a is None or b is None:
                    return
                yield boolean(value_compare(op, a, b))
            return plan

        if family == "node":
            def plan(dctx):
                result = node_compare(op, _opt_single_node(left_plan(dctx)),
                                      _opt_single_node(right_plan(dctx)))
                if result is not None:
                    yield boolean(result)
            return plan

        def plan(dctx):
            result = order_compare(op, _opt_single_node(left_plan(dctx)),
                                   _opt_single_node(right_plan(dctx)))
            if result is not None:
                yield boolean(result)
        return plan

    def _c_Arithmetic(self, expr: ast.Arithmetic) -> Plan:
        left_plan = self.compile(expr.left)
        right_plan = self.compile(expr.right)
        op = expr.op

        if self.executor is not None and is_parallel_safe(expr.left) \
                and is_parallel_safe(expr.right):
            # the slide's example: ns1:WS1($input) + ns2:WS2($input) —
            # both operands execute unconditionally and independently
            executor = self.executor
            self._mark_parallel(2)

            def plan(dctx):
                results = executor.run_group([left_plan, right_plan], dctx)
                if results is None:
                    dctx.count("parallel.fallback_sequential")
                    a = _opt_atomic_value(left_plan(dctx))
                    b = _opt_atomic_value(right_plan(dctx))
                else:
                    dctx.count("parallel.groups_run")
                    left_items, right_items = results
                    if left_items is None:
                        dctx.count("parallel.member_fallback")
                        left_items = left_plan(dctx)
                    if right_items is None:
                        dctx.count("parallel.member_fallback")
                        right_items = right_plan(dctx)
                    a = _opt_atomic_value(iter(left_items))
                    b = _opt_atomic_value(iter(right_items))
                result = arithmetic(op, a, b)
                if result is not None:
                    yield result
            return plan

        def plan(dctx):
            a = _opt_atomic_value(left_plan(dctx))
            b = _opt_atomic_value(right_plan(dctx))
            result = arithmetic(op, a, b)
            if result is not None:
                yield result
        return plan

    def _c_UnaryExpr(self, expr: ast.UnaryExpr) -> Plan:
        operand_plan = self.compile(expr.operand)
        op = expr.op

        def plan(dctx):
            value = _opt_atomic_value(operand_plan(dctx))
            result = negate(value) if op == "-" else unary_plus(value)
            if result is not None:
                yield result
        return plan

    def _c_SetOp(self, expr: ast.SetOp) -> Plan:
        left_plan = self.compile(expr.left)
        right_plan = self.compile(expr.right)
        op = expr.op

        def plan(dctx):
            left_nodes = _all_nodes(left_plan(dctx), op)
            right_nodes = _all_nodes(right_plan(dctx), op)
            right_ids = {id(n) for n in right_nodes}
            if op == "union":
                result = left_nodes + right_nodes
            elif op == "intersect":
                result = [n for n in left_nodes if id(n) in right_ids]
            else:
                result = [n for n in left_nodes if id(n) not in right_ids]
            yield from in_document_order(result)
        return plan

    # -- paths ---------------------------------------------------------------------

    def _c_RootExpr(self, expr) -> Plan:
        def plan(dctx):
            item = dctx.context_item()
            if not isinstance(item, Node):
                raise TypeError_("'/' requires a node context item", code="XPDY0050")
            yield item.root()
        return plan

    def _c_Step(self, expr: ast.Step) -> Plan:
        axis, test = expr.axis, expr.test

        def plan(dctx):
            item = dctx.context_item()
            if not isinstance(item, Node):
                raise TypeError_(f"axis step {axis}:: on a non-node item",
                                 code="XPTY0020")
            yield from step_iterator(axis, test, item)
        return plan

    def _c_PathExpr(self, expr: ast.PathExpr) -> Plan:
        left_plan = self.compile(expr.left)
        right_plan = self.compile(expr.right)

        def plan(dctx):
            token = dctx._shared.cancellation
            left_seq = BufferedSequence(left_plan(dctx), cancellation=token)
            size = left_seq.length  # resolved lazily by fn:last()
            for i, item in enumerate(left_seq, start=1):
                if token is not None:
                    token.check()
                if not isinstance(item, Node):
                    raise TypeError_("path step applied to a non-node", code="XPTY0019")
                yield from right_plan(dctx.with_focus(item, i, size))
        return plan

    def _c_Filter(self, expr: ast.Filter) -> Plan:
        base_plan = self.compile(expr.base)
        predicate = expr.predicate

        # static shortcut: [N] with a literal integer uses positional skip
        if isinstance(predicate, ast.Literal) and predicate.value.type.derives_from(T.XS_INTEGER):
            index = int(predicate.value.value)

            def plan(dctx):
                if index < 1:
                    return
                for i, item in enumerate(base_plan(dctx), start=1):
                    if i == index:
                        yield item
                        return  # lazy: stop pulling the base
            return plan

        predicate_plan = self.compile(predicate)

        def plan(dctx):
            token = dctx._shared.cancellation
            base_seq = BufferedSequence(base_plan(dctx), cancellation=token)
            size = base_seq.length
            for i, item in enumerate(base_seq, start=1):
                if token is not None:
                    token.check()
                focus = dctx.with_focus(item, i, size)
                result = list(predicate_plan(focus))
                if result and all(isinstance(v, AtomicValue) and T.is_numeric(v.type)
                                  for v in result):
                    # positional filtering, incl. the 2003-draft sequence
                    # form the tutorial shows: author[1 to 2]
                    if any(float(v.value) == i for v in result):
                        yield item
                elif effective_boolean_value(iter(result)):
                    yield item
        return plan

    def _c_DDO(self, expr: ast.DDO) -> Plan:
        operand_plan = self.compile(expr.operand)

        def plan(dctx):
            items = list(operand_plan(dctx))
            if not items:
                return
            if all(isinstance(item, Node) for item in items):
                dctx.count("ddo_sorts")
                yield from in_document_order(items)
                return
            if any(isinstance(item, Node) for item in items):
                raise TypeError_("path result mixes nodes and atomic values",
                                 code="XPTY0018")
            yield from items
        return plan

    def _c_OrderedExpr(self, expr: ast.OrderedExpr) -> Plan:
        return self.compile(expr.operand)

    def _c_AccessPath(self, expr: ast.AccessPath) -> Plan:
        from repro.joins.access import (
            element_chain_postings,
            value_lookup_elements,
        )

        fallback_plan = self.compile(expr.fallback)
        predicate_plan = self.compile(expr.predicate) \
            if expr.predicate is not None else None
        catalog = self.catalog
        var, steps, pred, chosen = expr.var, expr.steps, expr.pred, expr.chosen

        def plan(dctx):
            stored = None
            doc = None
            if catalog is not None:
                value = dctx.variable(var)
                items = list(value) if isinstance(
                    value, (list, tuple, BufferedSequence)) else [value]
                if len(items) == 1:
                    doc = items[0]
                    stored = catalog.stored_for(doc)
            if stored is None or not stored.indexed:
                # the runtime binding is not the indexed document this
                # plan was costed for — degrade to navigation
                dctx.count("access_path.fallback_navigation")
                yield from fallback_plan(dctx)
                return
            dctx.count(f"access_path.{chosen}")
            token = dctx._shared.cancellation
            eindex = stored.element_index
            if chosen == "value_index":
                candidates = value_lookup_elements(
                    eindex, stored.value_index, doc, steps,
                    pred[0], pred[1], pred[2])
            else:
                candidates = [p.node for p in
                              element_chain_postings(eindex, steps)]
            if predicate_plan is not None:
                # re-verify every index candidate with the original
                # predicate: normalized value keys over-approximate
                # string equality, and numeric probes never consult
                # the value index at all
                verified = []
                size = len(candidates)
                for i, node in enumerate(candidates, start=1):
                    if token is not None:
                        token.check()
                    focus = dctx.with_focus(node, i, size)
                    if effective_boolean_value(predicate_plan(focus)):
                        verified.append(node)
                candidates = verified
            dctx.count("access_path.actual_rows", len(candidates))
            for node in candidates:
                if token is not None:
                    token.check()
                yield node
        return plan

    def _c_TwigJoin(self, expr: ast.TwigJoin) -> Plan:
        from repro.joins.patterns import TwigPattern, evaluate_pattern

        fallback_plan = self.compile(expr.fallback)
        catalog = self.catalog
        var, spec, chosen = expr.var, expr.spec, expr.chosen
        holistic_branches = expr.holistic_branches

        def plan(dctx):
            stored = None
            doc = None
            if catalog is not None:
                value = dctx.variable(var)
                items = list(value) if isinstance(
                    value, (list, tuple, BufferedSequence)) else [value]
                if len(items) == 1:
                    doc = items[0]
                    stored = catalog.stored_for(doc)
            if stored is None or not stored.indexed:
                # the runtime binding is not the indexed document this
                # plan was costed for — degrade to navigation
                dctx.count("twig.fallback_navigation")
                yield from fallback_plan(dctx)
                return
            dctx.count(f"twig.{chosen}")
            token = dctx._shared.cancellation
            pattern = TwigPattern.from_spec(spec)
            counters: dict[str, int] = {}
            postings = evaluate_pattern(
                stored.element_index, pattern, algorithm=chosen,
                cancellation=token, counters=counters,
                holistic_branches=holistic_branches)
            dctx.count("twig.elements_scanned",
                       counters.get("elements_scanned", 0))
            for key, value in counters.items():
                if key.startswith("edge."):
                    # actual-vs-estimated surface: twig.edge.<p>><c>.
                    # actual_pairs lines up with the compile-time
                    # twig.edge.<p>><c>.est_pairs annotation
                    dctx.count("twig." + key.replace(".pairs",
                                                     ".actual_pairs"), value)
            dctx.count("twig.actual_rows", len(postings))
            for posting in postings:
                if token is not None:
                    token.check()
                yield posting.node
        return plan

    # -- constructors -----------------------------------------------------------

    def _c_ElementCtor(self, expr: ast.ElementCtor) -> Plan:
        attr_plans = [self.compile(a) for a in expr.attributes]
        content_plans = [self.compile(c) for c in expr.content]
        ns_decls = expr.ns_decls
        static_name = expr.name
        name_plan = self.compile(expr.name_expr) if expr.name_expr is not None else None
        namespaces = self.ctx.namespaces

        def plan(dctx):
            dctx.count("elements_constructed")
            name = static_name if name_plan is None else \
                _computed_name(name_plan(dctx), namespaces)
            attrs: list[AttributeNode] = []
            for attr_plan in attr_plans:
                for produced in attr_plan(dctx):
                    attrs.append(produced)
            content: list[Any] = []
            for content_plan in content_plans:
                content.extend(content_plan(dctx))
            yield construct_element(name, attrs, content, ns_decls)
        return plan

    def _c_AttributeCtor(self, expr: ast.AttributeCtor) -> Plan:
        part_plans = [self.compile(p) for p in expr.value_parts]
        static_name = expr.name
        name_plan = self.compile(expr.name_expr) if expr.name_expr is not None else None
        namespaces = self.ctx.namespaces

        def plan(dctx):
            name = static_name if name_plan is None else \
                _computed_name(name_plan(dctx), namespaces)
            parts = [list(p(dctx)) for p in part_plans]
            yield construct_attribute_from_parts(name, parts)
        return plan

    def _c_TextCtor(self, expr: ast.TextCtor) -> Plan:
        content_plan = self.compile(expr.content)

        def plan(dctx):
            node = construct_text(list(content_plan(dctx)))
            if node is not None:
                yield node
        return plan

    def _c_CommentCtor(self, expr: ast.CommentCtor) -> Plan:
        content_plan = self.compile(expr.content)

        def plan(dctx):
            yield construct_comment(list(content_plan(dctx)))
        return plan

    def _c_PICtor(self, expr: ast.PICtor) -> Plan:
        content_plan = self.compile(expr.content)
        static_target = expr.target
        target_plan = self.compile(expr.target_expr) if expr.target_expr is not None else None

        def plan(dctx):
            if target_plan is not None:
                target_value = _opt_atomic_value(target_plan(dctx))
                if target_value is None:
                    raise DynamicError("computed PI target is empty", code="XPTY0004")
                target = str(target_value.value)
            else:
                assert static_target is not None
                target = static_target
            yield construct_pi(target, list(content_plan(dctx)))
        return plan

    def _c_DocumentCtor(self, expr: ast.DocumentCtor) -> Plan:
        content_plan = self.compile(expr.content)

        def plan(dctx):
            yield construct_document(list(content_plan(dctx)))
        return plan

    # -- function calls -----------------------------------------------------------

    def _c_FunctionCall(self, expr: ast.FunctionCall) -> Plan:
        name = expr.name
        arity = len(expr.args)
        arg_plans = [self.compile(a) for a in expr.args]

        # constructor functions: xs:integer("5") etc. are casts
        if name.uri in (XS_NS, XDT_NS):
            atype = self.ctx.lookup_type(name)
            if isinstance(atype, T.AtomicType) and arity == 1:
                arg_plan = arg_plans[0]

                def plan(dctx):
                    values = list(atomize(arg_plan(dctx)))
                    if not values:
                        return
                    if len(values) > 1:
                        raise TypeError_("constructor function requires one value")
                    value = values[0]
                    yield AtomicValue(cast_value(value.value, value.type, atype), atype)
                return plan

        builtin = fnlib.lookup(name, arity)
        if builtin is not None:
            impl, lazy = builtin.impl, builtin.lazy

            # eager builtins materialize every argument anyway, so
            # independent pure arguments are a parallel group (lazy
            # builtins keep pull semantics: prefetching could hang on
            # an infinite argument that exists() would never drain)
            if self.executor is not None and not lazy:
                eligible = [is_parallel_safe(a) for a in expr.args]
                if sum(eligible) >= 2:
                    executor = self.executor
                    fan_out = [i for i, ok in enumerate(eligible) if ok]
                    self._mark_parallel(len(fan_out))

                    def plan(dctx):
                        results = executor.run_group(
                            [arg_plans[i] for i in fan_out], dctx)
                        if results is None:
                            dctx.count("parallel.fallback_sequential")
                            args = [list(sub(dctx)) for sub in arg_plans]
                        else:
                            dctx.count("parallel.groups_run")
                            produced = dict(zip(fan_out, results))
                            args = []
                            for i, sub in enumerate(arg_plans):
                                items = produced.get(i)
                                if items is None:
                                    if i in produced:
                                        dctx.count("parallel.member_fallback")
                                    items = list(sub(dctx))
                                args.append(items)
                        yield from impl(dctx, *args)
                    return plan

            def plan(dctx):
                if lazy:
                    args = [sub(dctx) for sub in arg_plans]
                else:
                    args = [list(sub(dctx)) for sub in arg_plans]
                yield from impl(dctx, *args)
            return plan

        decl = self.ctx.lookup_function(name, arity)
        if decl is not None and decl.body is not None:
            # recursive user function: compile once, call through the cache
            key = (name, arity)
            params = decl.params
            convert_types = [
                resolve_sequence_type(ptype, self.ctx) if ptype is not None else None
                for _, ptype in params]
            return_type = resolve_sequence_type(decl.return_type, self.ctx) \
                if decl.return_type is not None else None
            function_plans = self._function_plans

            if key not in function_plans:
                function_plans[key] = None  # reserve to stop recursion
                body_plan = self.compile(decl.body)
                function_plans[key] = body_plan

            def plan(dctx):
                body_plan = function_plans[key]
                bindings: dict[QName, Any] = {}
                for (pname, _), arg_plan, seq_type in zip(params, arg_plans, convert_types):
                    value = arg_plan(dctx)
                    if seq_type is not None:
                        value = _function_convert(value, seq_type, "argument")
                    bindings[pname] = BufferedSequence(
                        value, cancellation=dctx._shared.cancellation)
                result = body_plan(dctx.bind_many(bindings))
                if return_type is not None:
                    result = _function_convert(result, return_type, "return")
                yield from result
            return plan

        raise UndefinedNameError(f"unknown function {name}#{arity}", code="XPST0017")

    # -- batch operators ----------------------------------------------------------
    #
    # ``_b_<Node>`` methods mirror their ``_c_`` twins at block
    # granularity: each returns ``bplan(dctx) -> Iterator[list]``.
    # Cancellation tokens and profiler hooks are observed once per
    # block; the inner loops are plain Python over lists.

    def _b_Literal(self, expr: ast.Literal) -> Plan:
        value = expr.value

        def bplan(dctx):
            yield [value]
        return bplan

    def _b_EmptySequence(self, expr) -> Plan:
        def bplan(dctx):
            return iter(())
        return bplan

    def _b_ContextItem(self, expr) -> Plan:
        def bplan(dctx):
            yield [dctx.context_item()]
        return bplan

    def _b_RootExpr(self, expr) -> Plan:
        def bplan(dctx):
            item = dctx.context_item()
            if not isinstance(item, Node):
                raise TypeError_("'/' requires a node context item", code="XPDY0050")
            yield [item.root()]
        return bplan

    def _b_VarRef(self, expr: ast.VarRef) -> Plan:
        name = expr.name
        size = self.batch_size

        def bplan(dctx):
            value = dctx.variable(name)
            if isinstance(value, BufferedSequence):
                yield from value.iter_batches(size)
            elif isinstance(value, (list, tuple)):
                for start in range(0, len(value), size):
                    yield list(value[start:start + size])
            else:
                yield [value]
        return bplan

    def _b_SequenceExpr(self, expr: ast.SequenceExpr) -> Plan:
        bplans = [self.compile_batch(item) for item in expr.items]

        def bplan(dctx):
            for sub in bplans:
                yield from sub(dctx)
        return bplan

    def _b_RangeExpr(self, expr: ast.RangeExpr) -> Plan:
        low_plan = self.compile(expr.low)
        high_plan = self.compile(expr.high)
        size = self.batch_size

        def bplan(dctx):
            low = _opt_integer(low_plan(dctx), "range start")
            high = _opt_integer(high_plan(dctx), "range end")
            if low is None or high is None:
                return
            for start in range(low, high + 1, size):
                yield [integer(i)
                       for i in range(start, min(start + size - 1, high) + 1)]
        return bplan

    def _b_LetExpr(self, expr: ast.LetExpr) -> Plan:
        value_plan = self.compile(expr.value)
        body_bplan = self.compile_batch(expr.body)
        var = expr.var

        def bplan(dctx):
            binding = BufferedSequence(value_plan(dctx),
                                       cancellation=dctx._shared.cancellation)
            yield from body_bplan(dctx.bind(var, binding))
        return bplan

    def _b_IfExpr(self, expr: ast.IfExpr) -> Plan:
        cond_plan = self.compile(expr.cond)
        then_bplan = self.compile_batch(expr.then)
        else_bplan = self.compile_batch(expr.orelse)

        def bplan(dctx):
            if effective_boolean_value(cond_plan(dctx)):
                yield from then_bplan(dctx)
            else:
                yield from else_bplan(dctx)
        return bplan

    def _b_ForExpr(self, expr: ast.ForExpr) -> Plan:
        seq_bplan = self.compile_batch(expr.seq)
        var, pos_var = expr.var, expr.pos_var
        size = self.batch_size

        if pos_var is None and isinstance(expr.body, ast.VarRef) \
                and expr.body.name == var:
            # identity map (``for $i in X return $i``): the binding is
            # unobservable — pass the source blocks straight through
            self._fused_node(expr.body)
            return seq_bplan

        body_plan = self.compile(expr.body)

        if pos_var is None:
            def bplan(dctx):
                token = dctx._shared.cancellation
                out: list[Any] = []
                for batch in seq_bplan(dctx):
                    if token is not None:
                        token.check()
                    for item in batch:
                        out.extend(body_plan(dctx.bind(var, (item,))))
                        if len(out) >= size:
                            yield out
                            out = []
                if out:
                    yield out
        else:
            def bplan(dctx):
                token = dctx._shared.cancellation
                out: list[Any] = []
                i = 0
                for batch in seq_bplan(dctx):
                    if token is not None:
                        token.check()
                    for item in batch:
                        i += 1
                        child = dctx.bind_many({var: (item,),
                                                pos_var: (integer(i),)})
                        out.extend(body_plan(child))
                        if len(out) >= size:
                            yield out
                            out = []
                if out:
                    yield out
        return bplan

    def _b_DDO(self, expr: ast.DDO) -> Plan:
        operand_bplan = self.compile_batch(expr.operand)
        size = self.batch_size

        def bplan(dctx):
            items: list[Any] = []
            for batch in operand_bplan(dctx):
                items.extend(batch)
            if not items:
                return
            any_nodes = False
            all_nodes = True
            for item in items:
                if isinstance(item, Node):
                    any_nodes = True
                else:
                    all_nodes = False
            if all_nodes:
                dctx.count("ddo_sorts")
                ordered = list(in_document_order(items))
                for start in range(0, len(ordered), size):
                    yield ordered[start:start + size]
                return
            if any_nodes:
                raise TypeError_("path result mixes nodes and atomic values",
                                 code="XPTY0018")
            for start in range(0, len(items), size):
                yield items[start:start + size]
        return bplan

    def _b_PathExpr(self, expr: ast.PathExpr) -> Plan:
        left_bplan = self.compile_batch(expr.left)
        right = expr.right
        size = self.batch_size

        if isinstance(right, ast.Step):
            # fusion case 1: map a specialized step function over each
            # block — no per-item operator invocation at all
            step_fn = _compile_step_fn(right.axis, right.test)
            self._fused_node(right)

            def bplan(dctx):
                token = dctx._shared.cancellation
                out: list[Any] = []
                for batch in left_bplan(dctx):
                    if token is not None:
                        token.check()
                    for item in batch:
                        if not isinstance(item, Node):
                            raise TypeError_("path step applied to a non-node",
                                             code="XPTY0019")
                        out.extend(step_fn(item))
                        if len(out) >= size:
                            yield out
                            out = []
                if out:
                    yield out
            return bplan

        if isinstance(right, ast.Filter) and isinstance(right.base, ast.Step):
            # fusion case 2: step + predicate collapse into one loop.
            # Candidates are a per-parent list, so position()/last()
            # inside the predicate see exactly the item-mode focus.
            step = right.base
            step_fn = _compile_step_fn(step.axis, step.test)
            filter_node = self._fused_node(right)
            self._fused_node(step, parent=filter_node)
            predicate = right.predicate
            static_index = None
            predicate_plan = None
            if isinstance(predicate, ast.Literal) and \
                    predicate.value.type.derives_from(T.XS_INTEGER):
                static_index = int(predicate.value.value)
            else:
                if filter_node is not None:
                    self._node_stack.append(filter_node)
                try:
                    predicate_plan = self.compile(predicate)
                finally:
                    if filter_node is not None:
                        self._node_stack.pop()

            def bplan(dctx):
                token = dctx._shared.cancellation
                out: list[Any] = []
                for batch in left_bplan(dctx):
                    if token is not None:
                        token.check()
                    for item in batch:
                        if not isinstance(item, Node):
                            raise TypeError_("path step applied to a non-node",
                                             code="XPTY0019")
                        candidates = step_fn(item)
                        if static_index is not None:
                            if 1 <= static_index <= len(candidates):
                                out.append(candidates[static_index - 1])
                        else:
                            csize = len(candidates)
                            for i, candidate in enumerate(candidates, start=1):
                                focus = dctx.with_focus(candidate, i, csize)
                                result = list(predicate_plan(focus))
                                if result and all(
                                        isinstance(v, AtomicValue)
                                        and T.is_numeric(v.type)
                                        for v in result):
                                    if any(float(v.value) == i for v in result):
                                        out.append(candidate)
                                elif effective_boolean_value(iter(result)):
                                    out.append(candidate)
                    if len(out) >= size:
                        yield out
                        out = []
                if out:
                    yield out
            return bplan

        # generic right side: per-item focus map, still per-block polls.
        # Eligibility guaranteed the right side never reads last(), so
        # the focus size is never observed.
        right_plan = self.compile(right)

        def bplan(dctx):
            token = dctx._shared.cancellation
            out: list[Any] = []
            position = 0
            for batch in left_bplan(dctx):
                if token is not None:
                    token.check()
                for item in batch:
                    position += 1
                    if not isinstance(item, Node):
                        raise TypeError_("path step applied to a non-node",
                                         code="XPTY0019")
                    out.extend(right_plan(dctx.with_focus(item, position, 0)))
                    if len(out) >= size:
                        yield out
                        out = []
            if out:
                yield out
        return bplan

    def _b_Filter(self, expr: ast.Filter) -> Plan:
        base_bplan = self.compile_batch(expr.base)
        predicate = expr.predicate
        size = self.batch_size

        if isinstance(predicate, ast.Literal) and \
                predicate.value.type.derives_from(T.XS_INTEGER):
            index = int(predicate.value.value)

            def bplan(dctx):
                if index < 1:
                    return
                seen = 0
                for batch in base_bplan(dctx):
                    if seen + len(batch) >= index:
                        yield [batch[index - 1 - seen]]
                        return  # lazy: stop pulling the base
                    seen += len(batch)
            return bplan

        predicate_plan = self.compile(predicate)

        def bplan(dctx):
            token = dctx._shared.cancellation
            out: list[Any] = []
            i = 0
            for batch in base_bplan(dctx):
                if token is not None:
                    token.check()
                for item in batch:
                    i += 1
                    focus = dctx.with_focus(item, i, 0)
                    result = list(predicate_plan(focus))
                    if result and all(isinstance(v, AtomicValue)
                                      and T.is_numeric(v.type)
                                      for v in result):
                        if any(float(v.value) == i for v in result):
                            out.append(item)
                    elif effective_boolean_value(iter(result)):
                        out.append(item)
                if len(out) >= size:
                    yield out
                    out = []
            if out:
                yield out
        return bplan

    def _b_FunctionCall(self, expr: ast.FunctionCall) -> Plan:
        builtin = fnlib.lookup(expr.name, len(expr.args))
        assert builtin is not None  # _batch_eligible guarantees this
        size = self.batch_size

        if builtin.lazy:
            # count/exists/empty fuse into block-granularity aggregates
            arg_bplan = self.compile_batch(expr.args[0])
            local = expr.name.local
            if local == "count":
                def bplan(dctx):
                    total = 0
                    for batch in arg_bplan(dctx):
                        total += len(batch)
                    yield [integer(total)]
            elif local == "exists":
                def bplan(dctx):
                    for batch in arg_bplan(dctx):
                        if batch:
                            yield [boolean(True)]
                            return
                    yield [boolean(False)]
            else:  # empty
                def bplan(dctx):
                    for batch in arg_bplan(dctx):
                        if batch:
                            yield [boolean(False)]
                            return
                    yield [boolean(True)]
            return bplan

        # eager builtins (sum, avg, min, max, string-join, ...) take
        # materialized argument lists either way: drain the batched
        # arguments, call the same implementation, re-chunk the output
        arg_bplans = [self.compile_batch(a) for a in expr.args]
        impl = builtin.impl

        def bplan(dctx):
            args = []
            for sub in arg_bplans:
                items: list[Any] = []
                for batch in sub(dctx):
                    items.extend(batch)
                args.append(items)
            out = list(impl(dctx, *args))
            for start in range(0, len(out), size):
                yield out[start:start + size]
        return bplan


# -- fast axis steps (fusion kernels) ---------------------------------------------


def _compile_step_fn(axis: str, test):
    """A specialized ``node -> [matches]`` function for one axis step.

    The fused path loops call this once per context node.  For the hot
    axis/test shapes (child/descendant/attribute with a name test, the
    ``descendant-or-self::node()`` that ``//`` normalizes to) it is a
    direct list-building walk — no generator frames and no per-candidate
    :func:`node_test_matches` call, which is where most of the batched
    scan speedup comes from.  Anything else degrades to the generic
    :func:`step_iterator`.  Traversal order matches the axis iterators
    exactly (document order for forward axes).
    """
    from repro.xdm.nodes import ElementNode, TextNode

    kind, name = test.kind, test.name
    plain = test.type_name is None and test.pi_target is None

    if plain and kind in ("node", "element") and name is not None \
            and axis in ("child", "descendant", "descendant-or-self"):
        local, uri = name.local, name.uri
        any_local, any_uri = local == "*", uri == "*"

        if axis == "child":
            def fn(node, _E=ElementNode):
                return [c for c in node.children
                        if isinstance(c, _E)
                        and (any_local or c.name.local == local)
                        and (any_uri or c.name.uri == uri)]
            return fn

        include_self = axis == "descendant-or-self"

        def fn(node, _E=ElementNode):
            out: list = []
            if include_self and isinstance(node, _E):
                qn = node.name
                if (any_local or qn.local == local) and \
                        (any_uri or qn.uri == uri):
                    out.append(node)
            stack = list(reversed(node.children))
            while stack:
                n = stack.pop()
                if isinstance(n, _E):
                    qn = n.name
                    if (any_local or qn.local == local) and \
                            (any_uri or qn.uri == uri):
                        out.append(n)
                    children = n._children
                    if children:
                        stack.extend(reversed(children))
            return out
        return fn

    if plain and kind == "node" and name is None:
        if axis == "child":
            return lambda node: list(node.children)
        if axis == "self":
            return lambda node: [node]
        if axis == "descendant-or-self":
            def fn(node):
                out = [node]
                append = out.append
                stack = list(reversed(node.children))
                while stack:
                    n = stack.pop()
                    append(n)
                    children = n.children
                    if children:
                        stack.extend(reversed(children))
                return out
            return fn

    if plain and axis == "attribute" and kind in ("node", "attribute") \
            and name is not None:
        local, uri = name.local, name.uri
        any_local, any_uri = local == "*", uri == "*"

        def fn(node):
            return [a for a in node.attributes
                    if (any_local or a.name.local == local)
                    and (any_uri or a.name.uri == uri)]
        return fn

    if plain and kind == "text" and axis == "child":
        return lambda node, _T=TextNode: \
            [c for c in node.children if isinstance(c, _T)]

    return lambda node, _axis=axis, _test=test: \
        list(step_iterator(_axis, _test, node))


# -- helpers ---------------------------------------------------------------------


def _opt_integer(seq, what: str) -> int | None:
    values = list(atomize(seq))
    if not values:
        return None
    if len(values) > 1:
        raise TypeError_(f"{what} must be a single integer")
    value = values[0]
    if value.type is T.UNTYPED_ATOMIC:
        return int(cast_value(value.value, T.UNTYPED_ATOMIC, T.XS_INTEGER))
    if not value.type.derives_from(T.XS_INTEGER):
        raise TypeError_(f"{what} must be an integer, got {value.type}")
    return int(value.value)


def _opt_atomic_value(seq) -> AtomicValue | None:
    values = []
    for value in atomize(seq):
        values.append(value)
        if len(values) > 1:
            raise TypeError_("expected at most one atomic value", code="XPTY0004")
    return values[0] if values else None


def _opt_single_node(seq) -> Node | None:
    items = list(seq)
    if not items:
        return None
    if len(items) > 1 or not isinstance(items[0], Node):
        raise TypeError_("expected at most one node", code="XPTY0004")
    return items[0]


def _all_nodes(seq, op: str) -> list[Node]:
    nodes = list(seq)
    for node in nodes:
        if not isinstance(node, Node):
            raise TypeError_(f"{op} requires node sequences", code="XPTY0004")
    return nodes


def _computed_name(seq, namespaces) -> QName:
    values = list(atomize(seq))
    if len(values) != 1:
        raise TypeError_("computed constructor name must be a single value",
                         code="XPTY0004")
    value = values[0]
    if isinstance(value.value, QName):
        return value.value
    lexical = str(value.value)
    if ":" in lexical:
        prefix, local = lexical.split(":", 1)
        uri = namespaces.lookup(prefix)
        if uri is None:
            raise DynamicError(f"prefix {prefix!r} not in scope", code="XQDY0074")
        return QName(uri, local, prefix)
    return QName("", lexical)


def _function_convert(seq, seq_type: SequenceType, role: str):
    """The function conversion rules (atomize / promote / check).

    Lazy: items are converted and type-checked one at a time with a
    streaming occurrence check, so an infinite recursive function with
    a declared ``xs:integer*`` return type (the tutorial's endlessOnes)
    still evaluates lazily.
    """
    is_atomic = seq_type.item_kind == "atomic"
    target = seq_type.atomic_type
    count = 0

    source = atomize(seq) if is_atomic else iter(seq)
    for item in source:
        count += 1
        if count > 1 and not seq_type.allows_many():
            raise TypeError_(
                f"{role} does not match required type {seq_type}: too many items",
                code="XPTY0004")
        if is_atomic:
            assert target is not None
            value = item
            if value.type is T.UNTYPED_ATOMIC and target is not T.ANY_ATOMIC:
                value = AtomicValue(cast_value(value.value, T.UNTYPED_ATOMIC, target),
                                    target)
            elif T.is_numeric(value.type) and T.is_numeric(target) \
                    and not value.type.derives_from(target):
                # numeric promotion (never demotion)
                rank = {"decimal": 0, "float": 1, "double": 2}
                vr = rank[value.type.primitive.name.local]
                tr = rank[target.primitive.name.local]
                if vr < tr:
                    value = AtomicValue(cast_value(value.value, value.type, target),
                                        target)
            if not seq_type.matches_item(value):
                raise TypeError_(
                    f"{role} does not match required type {seq_type}",
                    code="XPTY0004")
            yield value
        else:
            if not seq_type.matches_item(item):
                raise TypeError_(
                    f"{role} does not match required type {seq_type}",
                    code="XPTY0004")
            yield item
    if count == 0 and not seq_type.allows_empty():
        raise TypeError_(
            f"{role} does not match required type {seq_type}: empty sequence",
            code="XPTY0004")


class _OrderKey:
    """functools-style comparison key for FLWOR order-by rows."""

    __slots__ = ("keys", "specs")

    def __init__(self, row, specs):
        self.keys = row[0]
        self.specs = specs

    @classmethod
    def factory(cls, specs):
        return lambda row: cls(row, specs)

    def __lt__(self, other: "_OrderKey") -> bool:
        for (key_a, key_b, (_plan, descending, empty_least)) in zip(
                self.keys, other.keys, self.specs):
            if key_a is None and key_b is None:
                continue
            if key_a is None:
                return empty_least != descending
            if key_b is None:
                return not (empty_least != descending)
            try:
                if value_compare("eq", key_a, key_b):
                    continue
                less = value_compare("lt", key_a, key_b)
            except TypeError_:
                less = str(key_a.value) < str(key_b.value)
            return less != descending
        return False


def compile_expr(expr: ast.Expr, static_ctx: StaticContext | None = None) -> Plan:
    """Compile a core expression into an executable plan."""
    return CodeGenerator(static_ctx or StaticContext()).compile(expr)
