"""The compiler: normalization, analysis, rewriting, code generation.

"Major compilation steps: 1. Parsing 2. Normalization 3. Type checking
4. Optimization 5. Code Generation."  The pipeline here follows the
paper's BEA architecture:

    text --parse--> expression tree --normalize--> core tree
         --analyze--> annotated tree --rewrite--> optimized tree
         --codegen--> iterator plan

- :mod:`repro.compiler.context` — the static context;
- :mod:`repro.compiler.normalize` — sugar → core (FLWOR lowering, DDO
  insertion, function inlining);
- :mod:`repro.compiler.sequencetype` — runtime-checkable sequence types;
- :mod:`repro.compiler.analysis` — the dataflow questions of the
  "Xquery expression analysis" slide (uses counts, node creation,
  doc-order/distinct guarantees, ...);
- :mod:`repro.compiler.typecheck` — static type inference;
- :mod:`repro.compiler.rewriter` + :mod:`repro.compiler.rules` — the
  rewrite-rule library with the paper's contract
  (type(e2) ⊆ type(e1), freeVars(e2) ⊆ freeVars(e1));
- :mod:`repro.compiler.codegen` — core tree → executable iterators.
"""

from repro.compiler.context import StaticContext
from repro.compiler.normalize import normalize_module
from repro.compiler.rewriter import RewriteEngine, default_rules
from repro.compiler.codegen import compile_expr

__all__ = [
    "StaticContext",
    "normalize_module",
    "RewriteEngine",
    "default_rules",
    "compile_expr",
]
