"""Normalization: the sugared expression tree → the core tree.

What happens here (the paper's step 2):

- **FLWOR lowering** — an order-by-free FLWOR becomes nested
  ``ForExpr`` / ``LetExpr`` / ``IfExpr`` (the equivalence shown on the
  "FLWR expression semantics" slide); ordered FLWORs keep their
  ``FLWOR`` node (clause bodies still normalized) and evaluate by
  tuple materialization.
- **DDO insertion** — every ``PathExpr`` gets an explicit
  distinct-doc-order wrapper, making the expensive operation visible
  to the optimizer so it can be *elided* (E5) instead of implicit and
  unavoidable.
- **Function inlining** — non-recursive user functions are inlined as
  nested LETs, with :class:`~repro.xquery.ast.ParamConvert` wrappers
  preserving the implicit conversions.
- **Scope checking** — undeclared variables are static errors here
  (err:XPST0008), not at run time.
"""

from __future__ import annotations

from repro.errors import UndefinedNameError
from repro.qname import QName
from repro.xquery import ast
from repro.compiler.context import StaticContext


def build_static_context(module: ast.Module,
                         base: StaticContext | None = None) -> StaticContext:
    """Populate a static context from a module's prolog."""
    ctx = base.copy() if base is not None else StaticContext()
    for prefix, uri in module.prolog.namespaces.items():
        ctx.namespaces.bind(prefix, uri)
    ctx.default_element_ns = module.prolog.default_element_ns or ctx.default_element_ns
    if module.prolog.default_function_ns is not None:
        ctx.default_function_ns = module.prolog.default_function_ns
    for decl in module.prolog.functions:
        ctx.declare_function(decl)
    for var in module.prolog.variables:
        ctx.declare_variable(var.name, var.type_decl)
    return ctx


class Normalizer:
    """One normalization pass over a module."""

    #: inlining depth cap — recursive/mutually recursive functions stop here
    MAX_INLINE_DEPTH = 8

    def __init__(self, ctx: StaticContext):
        self.ctx = ctx
        self._gensym = 0
        #: global (prolog / application) variable names, visible inside
        #: function bodies
        self.global_vars: set[QName] = set(ctx.variables)

    def fresh_var(self, hint: str = "v") -> QName:
        self._gensym += 1
        return QName("", f"#{hint}{self._gensym}")

    # -- entry points ------------------------------------------------------------

    def normalize_module(self, module: ast.Module,
                         extra_vars: tuple[QName, ...] = ()) -> ast.Expr:
        scope = {v.name for v in module.prolog.variables} | set(extra_vars)
        self.global_vars |= scope
        # global variable initializers become outer LETs around the body
        body = self.normalize(module.body, scope, inline_stack=())
        for var in reversed(module.prolog.variables):
            if var.value is not None:
                value = self.normalize(var.value, scope - {var.name}, ())
                body = ast.LetExpr(var.name, value, body, getattr(var.value, "pos", (0, 0)))
        return body

    # -- dispatch ----------------------------------------------------------------

    def normalize(self, expr: ast.Expr, scope: set[QName],
                  inline_stack: tuple[QName, ...]) -> ast.Expr:
        method = getattr(self, f"_n_{type(expr).__name__}", None)
        if method is not None:
            return method(expr, scope, inline_stack)
        # generic: normalize children
        return expr.with_children(lambda e: self.normalize(e, scope, inline_stack))

    # -- variables ----------------------------------------------------------------

    def _n_VarRef(self, expr: ast.VarRef, scope, inline_stack):
        if expr.name not in scope:
            raise UndefinedNameError(f"undeclared variable ${expr.name}")
        return expr

    # -- FLWOR lowering --------------------------------------------------------

    def _n_FLWOR(self, expr: ast.FLWOR, scope, inline_stack):
        inner_scope = set(scope)
        clauses: list[ast.ForClause | ast.LetClause] = []
        for clause in expr.clauses:
            seq = self.normalize(clause.expr, inner_scope, inline_stack)
            if isinstance(clause, ast.ForClause):
                clauses.append(ast.ForClause(clause.var, seq, clause.pos_var,
                                             clause.type_decl))
                inner_scope.add(clause.var)
                if clause.pos_var is not None:
                    inner_scope.add(clause.pos_var)
            else:
                clauses.append(ast.LetClause(clause.var, seq, clause.type_decl))
                inner_scope.add(clause.var)
        where = (self.normalize(expr.where, inner_scope, inline_stack)
                 if expr.where is not None else None)

        group = [(var, self.normalize(key, inner_scope, inline_stack))
                 for var, key in expr.group]
        post_scope = set(inner_scope)
        for var, _key in group:
            post_scope.add(var)

        ret = self.normalize(expr.ret, post_scope, inline_stack)

        if expr.order or group:
            order = [ast.OrderSpec(self.normalize(s.expr, post_scope, inline_stack),
                                   s.descending, s.empty_least)
                     for s in expr.order]
            return ast.FLWOR(clauses, where, order, ret, expr.stable, expr.pos,
                             group)

        # lower to core: innermost first
        body = ret
        if where is not None:
            body = ast.IfExpr(where, body, ast.EmptySequence(expr.pos), expr.pos)
        for clause in reversed(clauses):
            if isinstance(clause, ast.ForClause):
                body = ast.ForExpr(clause.var, clause.expr, body,
                                   clause.pos_var, expr.pos)
            else:
                body = ast.LetExpr(clause.var, clause.expr, body, expr.pos)
        return body

    def _n_ForExpr(self, expr: ast.ForExpr, scope, inline_stack):
        seq = self.normalize(expr.seq, scope, inline_stack)
        inner = set(scope)
        inner.add(expr.var)
        if expr.pos_var is not None:
            inner.add(expr.pos_var)
        body = self.normalize(expr.body, inner, inline_stack)
        if seq is expr.seq and body is expr.body:
            return expr
        return ast.ForExpr(expr.var, seq, body, expr.pos_var, expr.pos)

    def _n_LetExpr(self, expr: ast.LetExpr, scope, inline_stack):
        value = self.normalize(expr.value, scope, inline_stack)
        inner = set(scope)
        inner.add(expr.var)
        body = self.normalize(expr.body, inner, inline_stack)
        if value is expr.value and body is expr.body:
            return expr
        return ast.LetExpr(expr.var, value, body, expr.pos)

    def _n_Quantified(self, expr: ast.Quantified, scope, inline_stack):
        seq = self.normalize(expr.seq, scope, inline_stack)
        inner = set(scope)
        inner.add(expr.var)
        cond = self.normalize(expr.cond, inner, inline_stack)
        if seq is expr.seq and cond is expr.cond:
            return expr
        return ast.Quantified(expr.kind, expr.var, seq, cond, expr.pos)

    def _n_Typeswitch(self, expr: ast.Typeswitch, scope, inline_stack):
        operand = self.normalize(expr.operand, scope, inline_stack)
        cases = []
        for case in expr.cases:
            inner = set(scope)
            if case.var is not None:
                inner.add(case.var)
            cases.append(ast.TypeswitchCase(
                case.var, case.seq_type,
                self.normalize(case.body, inner, inline_stack)))
        inner = set(scope)
        if expr.default.var is not None:
            inner.add(expr.default.var)
        default = ast.TypeswitchCase(
            expr.default.var, None,
            self.normalize(expr.default.body, inner, inline_stack))
        return ast.Typeswitch(operand, cases, default, expr.pos)

    # -- paths -------------------------------------------------------------------

    def _n_PathExpr(self, expr: ast.PathExpr, scope, inline_stack):
        left = self.normalize(expr.left, scope, inline_stack)
        right = self.normalize(expr.right, scope, inline_stack)
        return ast.DDO(ast.PathExpr(left, right, expr.pos), expr.pos)

    # -- function calls: inline user functions --------------------------------

    def _n_FunctionCall(self, expr: ast.FunctionCall, scope, inline_stack):
        args = [self.normalize(a, scope, inline_stack) for a in expr.args]
        decl = self.ctx.lookup_function(expr.name, len(args))
        if decl is None or decl.external or decl.body is None:
            return ast.FunctionCall(expr.name, args, expr.pos)

        # recursion (direct or mutual) or inline depth exceeded: keep the call
        if expr.name in inline_stack or len(inline_stack) >= self.MAX_INLINE_DEPTH:
            return ast.FunctionCall(expr.name, args, expr.pos)

        # inline: let $p := convert(arg) return convert_return(body)
        inner_stack = inline_stack + (expr.name,)
        body_scope = {p for p, _ in decl.params} | self.global_vars
        body = self.normalize(decl.body, body_scope, inner_stack)
        if decl.return_type is not None:
            body = ast.ParamConvert(body, decl.return_type, "return", expr.pos)
        for (pname, ptype), arg in zip(reversed(decl.params), reversed(args)):
            if ptype is not None:
                arg = ast.ParamConvert(arg, ptype, "argument", expr.pos)
            body = ast.LetExpr(pname, arg, body, expr.pos)
        return body


def normalize_module(module: ast.Module,
                     ctx: StaticContext | None = None,
                     extra_vars: tuple[QName, ...] = ()) -> tuple[ast.Expr, StaticContext]:
    """Normalize a parsed module; returns (core expression, static context).

    ``extra_vars`` are application-bound variables usable without a
    prolog declaration (a convenience the W3C spec does not grant, but
    every embedded engine does).
    """
    static_ctx = build_static_context(module, ctx)
    for name in extra_vars:
        static_ctx.declare_variable(name)
    normalizer = Normalizer(static_ctx)
    body = normalizer.normalize_module(module, extra_vars)
    return body, static_ctx
