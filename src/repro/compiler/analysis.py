"""Expression analysis — the compiler's dataflow questions.

The paper's "Xquery expression analysis" slide, implemented as a
bottom-up annotation pass.  Per expression we compute:

- ``creates_nodes`` — can the result contain newly created nodes?
  (gates LET folding and unfolding);
- ``can_raise`` — can evaluation raise a user-visible error?
- ``uses_focus`` — does it read the context item/position/size?
- ``doc_ordered`` / ``distinct`` / ``disjoint`` — the path-analysis
  triple behind the tutorial's ``/a/b/c`` vs ``//a/b`` vs ``//a//b``
  table; ``disjoint`` means no result node is an ancestor of another,
  which is what makes a following child step order-preserving.

Annotations live in ``expr.annotations`` and are recomputed from
scratch by :func:`analyze` (cheap: one walk).

Variable-usage counting (:func:`count_var_uses`) answers the LET
folding questions: how many times is ``$x`` used, and is any use under
a loop?
"""

from __future__ import annotations

from typing import Iterator

from repro.qname import (
    FN_NS as _FN_NS,
    QName,
    XDT_NS as _XDT_NS,
    XS_NS as _XS_NS,
)
from repro.runtime import functions as fnlib
from repro.xquery import ast

_FORWARD_STABLE = ("child", "attribute", "self")
_DESCENDANT = ("descendant", "descendant-or-self")


def analyze(expr: ast.Expr, static_ctx=None) -> ast.Expr:
    """Annotate ``expr`` (in place) bottom-up; returns it for chaining."""
    for child in expr.children():
        analyze(child, static_ctx)
    ann = expr.annotations
    ann.clear()
    ann.update(_node_properties(expr, static_ctx))
    return expr


def analyze_incremental(expr: ast.Expr, static_ctx=None) -> ast.Expr:
    """Annotate only nodes that have no annotations yet.

    Expression trees are immutable once built (rewrites produce new
    nodes), so existing annotations stay valid; the rewrite engine uses
    this to keep per-sweep cost linear instead of quadratic.
    """
    if expr.annotations:
        return expr
    for child in expr.children():
        analyze_incremental(child, static_ctx)
    expr.annotations.update(_node_properties(expr, static_ctx))
    return expr


def _child_any(expr: ast.Expr, key: str) -> bool:
    return any(c.annotations.get(key, False) for c in expr.children())


def _node_properties(expr: ast.Expr, static_ctx) -> dict:
    creates = _child_any(expr, "creates_nodes")
    can_raise = _child_any(expr, "can_raise")
    uses_focus = _child_any(expr, "uses_focus")
    ordered = False
    distinct = False
    disjoint = False

    if isinstance(expr, ast.Literal) or isinstance(expr, ast.EmptySequence):
        return {"creates_nodes": False, "can_raise": False, "uses_focus": False,
                "doc_ordered": True, "distinct": True, "disjoint": True,
                "singleton": isinstance(expr, ast.Literal)}

    if isinstance(expr, ast.VarRef):
        # a variable's content is generally unknown — but a declared
        # singleton node type ("$d as document-node()") restores the
        # ordered/distinct/disjoint guarantees a path needs
        singleton_node = False
        if static_ctx is not None:
            decl = static_ctx.variables.get(expr.name)
            if decl is not None and getattr(decl, "occurrence", None) == "" and \
                    getattr(decl, "item_kind", None) in (
                        "document", "element", "attribute", "node",
                        "text", "comment", "processing-instruction"):
                singleton_node = True
        return {"creates_nodes": False, "can_raise": False, "uses_focus": False,
                "doc_ordered": singleton_node, "distinct": singleton_node,
                "disjoint": singleton_node, "singleton": singleton_node}

    if isinstance(expr, ast.ContextItem):
        return {"creates_nodes": False, "can_raise": True, "uses_focus": True,
                "doc_ordered": True, "distinct": True, "disjoint": True,
                "singleton": True}

    if isinstance(expr, ast.RootExpr):
        return {"creates_nodes": False, "can_raise": True, "uses_focus": True,
                "doc_ordered": True, "distinct": True, "disjoint": True,
                "singleton": True}

    if isinstance(expr, (ast.AccessPath, ast.TwigJoin)):
        # planner-introduced: emits distinct elements of one document
        # in document order, like the DDO(PathExpr) it replaced
        return {"creates_nodes": False, "can_raise": True,
                "uses_focus": False, "doc_ordered": True, "distinct": True,
                "disjoint": False}

    if isinstance(expr, ast.Step):
        # a step from ONE context node
        if expr.axis in _FORWARD_STABLE:
            ordered = distinct = disjoint = True
        elif expr.axis in _DESCENDANT:
            ordered = distinct = True
            disjoint = False
        elif expr.axis in ("parent",):
            ordered = distinct = True  # single node
            disjoint = True
        else:
            ordered = distinct = disjoint = False
        return {"creates_nodes": False, "can_raise": True, "uses_focus": True,
                "doc_ordered": ordered, "distinct": distinct, "disjoint": disjoint}

    if isinstance(expr, ast.PathExpr):
        left, right = expr.left, expr.right
        la = left.annotations
        # the right side's focus comes from the path itself
        uses_focus = la.get("uses_focus", False)
        l_ordered = la.get("doc_ordered", False)
        l_distinct = la.get("distinct", False)
        l_disjoint = la.get("disjoint", False)
        if isinstance(right, ast.Step):
            axis = right.axis
            if l_ordered and l_distinct and l_disjoint:
                if axis in _FORWARD_STABLE:
                    ordered = distinct = disjoint = True
                elif axis in _DESCENDANT:
                    # /a//b — ordered & distinct, but results can nest
                    ordered = distinct = True
                    disjoint = False
            elif l_ordered and l_distinct and not l_disjoint:
                if axis in ("child", "attribute"):
                    # //a/b — distinct but NOT ordered (the slide's case)
                    distinct = True
                elif axis == "self":
                    ordered, distinct, disjoint = l_ordered, l_distinct, l_disjoint
        elif isinstance(right, ast.Filter):
            # filters preserve the base's guarantees; approximate by
            # treating Filter(Step) like its step
            inner = right
            while isinstance(inner, ast.Filter):
                inner = inner.base
            if isinstance(inner, ast.Step):
                proxy = ast.PathExpr(left, inner, expr.pos)
                proxy.left.annotations.update(la)
                # recompute with the inner step
                props = _node_properties(proxy, static_ctx)
                ordered = props["doc_ordered"]
                distinct = props["distinct"]
                disjoint = props["disjoint"]
        return {"creates_nodes": creates, "can_raise": True,
                "uses_focus": uses_focus,
                "doc_ordered": ordered, "distinct": distinct, "disjoint": disjoint}

    if isinstance(expr, ast.Filter):
        base_ann = expr.base.annotations
        return {"creates_nodes": creates, "can_raise": True,
                "uses_focus": base_ann.get("uses_focus", False),
                "doc_ordered": base_ann.get("doc_ordered", False),
                "distinct": base_ann.get("distinct", False),
                "disjoint": base_ann.get("disjoint", False)}

    if isinstance(expr, ast.DDO):
        inner = expr.operand.annotations
        return {"creates_nodes": creates, "can_raise": True,
                "uses_focus": inner.get("uses_focus", False),
                "doc_ordered": True, "distinct": True,
                "disjoint": inner.get("disjoint", False)}

    if isinstance(expr, (ast.ElementCtor, ast.AttributeCtor, ast.TextCtor,
                         ast.CommentCtor, ast.PICtor, ast.DocumentCtor)):
        return {"creates_nodes": True, "can_raise": True, "uses_focus": uses_focus,
                "doc_ordered": True, "distinct": True, "disjoint": True,
                "singleton": True}

    if isinstance(expr, ast.ValidateExpr):
        return {"creates_nodes": True, "can_raise": True, "uses_focus": uses_focus,
                "doc_ordered": True, "distinct": True, "disjoint": True}

    if isinstance(expr, ast.FunctionCall):
        builtin = fnlib.lookup(expr.name, len(expr.args))
        if builtin is not None:
            return {"creates_nodes": creates or builtin.creates_nodes,
                    "can_raise": True,
                    "uses_focus": uses_focus or builtin.context_sensitive,
                    "doc_ordered": False, "distinct": False, "disjoint": False}
        if expr.name.uri in (_XS_NS, _XDT_NS):
            # constructor function: a cast producing an atomic value —
            # it can raise (FORG0001) but never creates nodes
            return {"creates_nodes": creates, "can_raise": True,
                    "uses_focus": uses_focus,
                    "doc_ordered": False, "distinct": False, "disjoint": False}
        # unknown/user function: conservative on everything
        return {"creates_nodes": True, "can_raise": True, "uses_focus": uses_focus,
                "doc_ordered": False, "distinct": False, "disjoint": False}

    if isinstance(expr, (ast.ForExpr, ast.FLWOR)):
        return {"creates_nodes": creates, "can_raise": True, "uses_focus": uses_focus,
                "doc_ordered": False, "distinct": False, "disjoint": False}

    if isinstance(expr, ast.LetExpr):
        body_ann = expr.body.annotations
        return {"creates_nodes": creates, "can_raise": can_raise,
                "uses_focus": uses_focus,
                "doc_ordered": body_ann.get("doc_ordered", False),
                "distinct": body_ann.get("distinct", False),
                "disjoint": body_ann.get("disjoint", False)}

    if isinstance(expr, ast.IfExpr):
        then_ann, else_ann = expr.then.annotations, expr.orelse.annotations
        return {"creates_nodes": creates, "can_raise": True, "uses_focus": uses_focus,
                "doc_ordered": then_ann.get("doc_ordered", False)
                and else_ann.get("doc_ordered", False),
                "distinct": then_ann.get("distinct", False)
                and else_ann.get("distinct", False),
                "disjoint": False}

    if isinstance(expr, (ast.Comparison, ast.Arithmetic, ast.AndExpr, ast.OrExpr,
                         ast.UnaryExpr, ast.Quantified, ast.InstanceOf,
                         ast.CastExpr, ast.CastableExpr, ast.RangeExpr)):
        return {"creates_nodes": creates, "can_raise": True, "uses_focus": uses_focus,
                "doc_ordered": True, "distinct": True, "disjoint": True,
                "singleton": False}

    if isinstance(expr, ast.SetOp):
        return {"creates_nodes": creates, "can_raise": True, "uses_focus": uses_focus,
                "doc_ordered": True, "distinct": True, "disjoint": False}

    # SequenceExpr, Typeswitch, Treat, ParamConvert, OrderedExpr, ...
    return {"creates_nodes": creates, "can_raise": can_raise or True,
            "uses_focus": uses_focus,
            "doc_ordered": False, "distinct": False, "disjoint": False}


# ---------------------------------------------------------------------------
# Focus-size usage (the batched/source-codegen eligibility walk)
# ---------------------------------------------------------------------------


def uses_last(expr: ast.Expr) -> bool:
    """Does the subtree (conservatively) observe the focus size?

    Walks ``_fields`` children plus the clause/case expressions the
    generic traversal skips; unknown (user) function calls count as
    using last() because their bodies inherit the caller's focus.
    Both execution backends that replace the lazily-sized
    ``BufferedSequence`` focus with a plain counter — the block-at-a-
    time operators and the compile-to-source emitter — gate their
    fusion on this walk.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.FunctionCall):
            if node.name.local == "last" and not node.args:
                return True
            if node.name.uri not in (_XS_NS, _XDT_NS) and \
                    fnlib.lookup(node.name, len(node.args)) is None:
                return True
        stack.extend(node.children())
        clauses = getattr(node, "clauses", None)
        if clauses:
            stack.extend(c.expr for c in clauses)
        cases = getattr(node, "cases", None)
        if cases:
            stack.extend(c.body for c in cases)
        default = getattr(node, "default", None)
        if default is not None and getattr(default, "body", None) is not None:
            stack.append(default.body)
        order = getattr(node, "order", None)
        if order:
            stack.extend(s.expr for s in order)
        group = getattr(node, "group", None)
        if group:
            stack.extend(key for _var, key in group)
    return False


# ---------------------------------------------------------------------------
# Collection shardability (the scatter-gather eligibility walk)
# ---------------------------------------------------------------------------

#: aggregates with a partial-aggregate + combine path in the merge
#: operator (:mod:`repro.service.sharding`)
SHARDABLE_AGGREGATES = ("count", "sum", "exists")

#: functions whose appearance anywhere inside a *spine filter*
#: predicate makes the predicate positional (sequence-relative), hence
#: not per-document decomposable
_POSITIONAL_FNS = ("position", "last")


def _is_default_collection(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.FunctionCall) and not expr.args
            and expr.name.local == "collection"
            and expr.name.uri in ("", _FN_NS))


def _contains_collection(expr: ast.Expr) -> bool:
    return any(_is_default_collection(e) for e in expr.walk())


def collection_shard_plan(expr: ast.Expr):
    """Is this query *scan-distributive* over the default collection?

    Returns ``"scan"``, ``"count"``, ``"sum"``, or ``"exists"`` when
    evaluating the query per catalog document and combining per-shard
    results reproduces single-process execution byte-for-byte; ``None``
    means the scatter-gather router must fall back to one worker.

    The property proved is per-document independence: with the default
    collection bound to each single document in turn,

    - ``"scan"``: concatenating the per-document results in sorted-name
      document order equals the global result (paths group their output
      by tree, and a FLWOR without ``order by``/``group by``/positional
      variables emits tuples in binding order);
    - ``"count"``/``"sum"``: the global aggregate is the fold of the
      per-document partials (in document order — sum's type promotion
      walks left to right);
    - ``"exists"``: the global answer is the first non-empty partial,
      *in document order* — an error raised by an earlier document
      still wins over a later document's ``true`` (first error in
      document order), exactly like the single-process left-to-right
      evaluation.

    The walk is deliberately conservative: one ``collection()`` call,
    on a recognized spine (paths with per-step predicates, DDO,
    non-positional FLWOR/for bindings), every function a known
    deterministic builtin or constructor-cast, no sequence-positional
    filter over the spine, no ``order by``/``group by`` across the
    collection binding.
    """
    calls = sum(1 for e in expr.walk() if _is_default_collection(e))
    if calls != 1:
        return None
    # every function call must be a known deterministic builtin or an
    # xs:/xdt: constructor cast — unknown or non-deterministic calls
    # could observe which process they run in
    for e in expr.walk():
        if isinstance(e, ast.FunctionCall) and not _is_default_collection(e):
            if e.name.uri in (_XS_NS, _XDT_NS):
                continue
            builtin = fnlib.lookup(e.name, len(e.args))
            if builtin is None or not builtin.deterministic:
                return None
    root = expr
    if isinstance(root, ast.FunctionCall) and len(root.args) == 1 \
            and root.name.local in SHARDABLE_AGGREGATES \
            and root.name.uri in ("", _FN_NS):
        if _shard_spine(root.args[0]):
            return root.name.local
        return None
    if _shard_spine(root):
        return "scan"
    return None


def _shard_spine(expr: ast.Expr) -> bool:
    """The collection call reached through per-document-safe operators."""
    if _is_default_collection(expr):
        return True
    if isinstance(expr, ast.DDO):
        return _shard_spine(expr.operand)
    if isinstance(expr, ast.PathExpr):
        return _shard_spine(expr.left) and _shard_step(expr.right)
    if isinstance(expr, ast.Filter):
        # a filter over the whole spine sees the cross-document
        # sequence: only provably non-positional boolean predicates
        # decompose per document
        return _shard_spine(expr.base) \
            and _boolean_predicate(expr.predicate) \
            and not _contains_collection(expr.predicate)
    if isinstance(expr, ast.ForExpr):
        if not _contains_collection(expr.seq):
            return False
        return expr.pos_var is None and _shard_spine(expr.seq) \
            and not _contains_collection(expr.body)
    if isinstance(expr, ast.LetExpr):
        # let $x := collection()... binds the whole cross-document
        # sequence to one variable — give up (the body could index it)
        if _contains_collection(expr.value):
            return False
        return _shard_spine(expr.body)
    if isinstance(expr, ast.FLWOR):
        if expr.order or expr.group:
            return False
        binder = None
        for i, clause in enumerate(expr.clauses):
            if _contains_collection(clause.expr):
                binder = i
                break
        if binder is None:
            return False
        clause = expr.clauses[binder]
        if not isinstance(clause, ast.ForClause) or clause.pos_var is not None:
            return False
        if not _shard_spine(clause.expr):
            return False
        for j, other in enumerate(expr.clauses):
            if j == binder:
                continue
            if j < binder and not isinstance(other, ast.LetClause):
                # a preceding for-clause would cross-join the
                # collection against another sequence; per-document
                # evaluation would reorder the tuple stream
                return False
            if _contains_collection(other.expr):
                return False
        if expr.where is not None and _contains_collection(expr.where):
            return False
        return not _contains_collection(expr.ret)
    return False


def _shard_step(expr: ast.Expr) -> bool:
    """Right side of a spine path: a step, or a filter chain over one.

    Per-step predicates (including positional ones — ``item[2]`` after
    an axis step) evaluate against one context node at a time, so they
    are per-document safe by construction; every axis stays inside the
    context node's tree.
    """
    while isinstance(expr, ast.Filter):
        if _contains_collection(expr.predicate):
            return False
        expr = expr.base
    return isinstance(expr, ast.Step)


def _boolean_predicate(expr: ast.Expr) -> bool:
    """Provably boolean (never sequence-positional) filter predicate.

    A numeric predicate value selects by position in the *filtered
    sequence* — which spans documents on the spine — so anything that
    could evaluate to a number (literals, arithmetic, variables,
    value-returning functions) is rejected, as is any appearance of
    ``position()``/``last()``.
    """
    for e in expr.walk():
        if isinstance(e, ast.FunctionCall) and not e.args \
                and e.name.local in _POSITIONAL_FNS \
                and e.name.uri in ("", _FN_NS):
            return False
    if isinstance(expr, (ast.Comparison, ast.AndExpr, ast.OrExpr,
                         ast.Quantified, ast.InstanceOf,
                         ast.CastableExpr)):
        return True
    if isinstance(expr, ast.FunctionCall) and expr.name.uri in ("", _FN_NS) \
            and expr.name.local in ("not", "exists", "empty", "boolean",
                                    "contains", "starts-with", "ends-with",
                                    "true", "false"):
        return True
    if isinstance(expr, (ast.Step, ast.PathExpr, ast.DDO)):
        # node-sequence predicate: effective boolean value is
        # existence, not position
        return True
    return False


# ---------------------------------------------------------------------------
# Variable usage
# ---------------------------------------------------------------------------


def count_var_uses(expr: ast.Expr, var: QName) -> tuple[int, bool]:
    """(number of syntactic uses of ``$var``, any use inside a loop?).

    Scoping is respected: a nested binding of the same name shadows.
    """
    return _count(expr, var, in_loop=False)


def _count(expr: ast.Expr, var: QName, in_loop: bool) -> tuple[int, bool]:
    if isinstance(expr, ast.VarRef):
        if expr.name == var:
            return 1, in_loop
        return 0, False

    total, looped = 0, False

    def add(sub: ast.Expr, loop: bool) -> None:
        nonlocal total, looped
        c, l = _count(sub, var, loop)
        total += c
        looped = looped or l

    if isinstance(expr, ast.ForExpr):
        add(expr.seq, in_loop)
        if expr.var != var and expr.pos_var != var:
            add(expr.body, True)
        return total, looped
    if isinstance(expr, ast.LetExpr):
        add(expr.value, in_loop)
        if expr.var != var:
            add(expr.body, in_loop)
        return total, looped
    if isinstance(expr, ast.Quantified):
        add(expr.seq, in_loop)
        if expr.var != var:
            add(expr.cond, True)
        return total, looped
    if isinstance(expr, ast.FLWOR):
        shadowed = False
        for clause in expr.clauses:
            add(clause.expr, in_loop or shadowed)
            if clause.var == var:
                shadowed = True
            if isinstance(clause, ast.ForClause) and clause.pos_var == var:
                shadowed = True
        if not shadowed:
            if expr.where is not None:
                add(expr.where, True)
            for _gvar, key in expr.group:
                add(key, True)
        # a group-by variable rebinds its name for order/return
        shadowed = shadowed or any(gvar == var for gvar, _ in expr.group)
        if not shadowed:
            for spec in expr.order:
                add(spec.expr, True)
            add(expr.ret, True)
        return total, looped
    if isinstance(expr, ast.Typeswitch):
        add(expr.operand, in_loop)
        for case in expr.cases:
            if case.var != var:
                add(case.body, in_loop)
        if expr.default.var != var:
            add(expr.default.body, in_loop)
        return total, looped
    if isinstance(expr, (ast.PathExpr,)):
        add(expr.left, in_loop)
        add(expr.right, True)  # right side runs once per left item
        return total, looped
    if isinstance(expr, ast.Filter):
        add(expr.base, in_loop)
        add(expr.predicate, True)
        return total, looped

    for child in expr.children():
        add(child, in_loop)
    return total, looped


def expr_equal(a: ast.Expr, b: ast.Expr) -> bool:
    """Structural equality of expressions ("*Same* expression?").

    Positions and annotations are ignored; names, operators, literals,
    and shape must match.  This is the first of the two questions the
    CSE slide asks (the second — *same context?* — is the caller's job:
    both occurrences must sit under the same bindings and focus).
    """
    if type(a) is not type(b):
        return False
    for field_name in _compare_fields(a):
        va, vb = getattr(a, field_name, None), getattr(b, field_name, None)
        if isinstance(va, ast.Expr):
            if not isinstance(vb, ast.Expr) or not expr_equal(va, vb):
                return False
        elif isinstance(va, (list, tuple)):
            if not isinstance(vb, (list, tuple)) or len(va) != len(vb):
                return False
            for xa, xb in zip(va, vb):
                if isinstance(xa, ast.Expr):
                    if not isinstance(xb, ast.Expr) or not expr_equal(xa, xb):
                        return False
                elif xa != xb:
                    return False
        elif va != vb:
            return False
    return True


def _compare_fields(expr: ast.Expr):
    """Every slot that contributes to an expression's identity."""
    seen = []
    for klass in type(expr).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot in ("pos", "annotations", "__weakref__"):
                continue
            seen.append(slot)
    return seen


def expr_fingerprint(expr: ast.Expr) -> str:
    """A cheap hashable key so CSE can bucket candidates before the
    exact :func:`expr_equal` comparison."""
    parts = [type(expr).__name__]
    for field_name in _compare_fields(expr):
        value = getattr(expr, field_name, None)
        if isinstance(value, ast.Expr):
            parts.append(expr_fingerprint(value))
        elif isinstance(value, (list, tuple)):
            parts.append(",".join(
                expr_fingerprint(v) if isinstance(v, ast.Expr) else str(v)
                for v in value))
        else:
            parts.append(str(value))
    return "(" + "|".join(parts) + ")"


def free_vars(expr: ast.Expr) -> set[QName]:
    """The free variables of ``expr`` (rewrite-contract checking)."""
    out: set[QName] = set()
    _free(expr, set(), out)
    return out


def _free(expr: ast.Expr, bound: set[QName], out: set[QName]) -> None:
    if isinstance(expr, ast.VarRef):
        if expr.name not in bound:
            out.add(expr.name)
        return
    if isinstance(expr, ast.ForExpr):
        _free(expr.seq, bound, out)
        inner = bound | {expr.var}
        if expr.pos_var is not None:
            inner = inner | {expr.pos_var}
        _free(expr.body, inner, out)
        return
    if isinstance(expr, ast.LetExpr):
        _free(expr.value, bound, out)
        _free(expr.body, bound | {expr.var}, out)
        return
    if isinstance(expr, ast.Quantified):
        _free(expr.seq, bound, out)
        _free(expr.cond, bound | {expr.var}, out)
        return
    if isinstance(expr, ast.FLWOR):
        inner = set(bound)
        for clause in expr.clauses:
            _free(clause.expr, inner, out)
            inner.add(clause.var)
            if isinstance(clause, ast.ForClause) and clause.pos_var is not None:
                inner.add(clause.pos_var)
        if expr.where is not None:
            _free(expr.where, inner, out)
        for _gvar, key in expr.group:
            _free(key, inner, out)
        inner |= {gvar for gvar, _ in expr.group}
        for spec in expr.order:
            _free(spec.expr, inner, out)
        _free(expr.ret, inner, out)
        return
    if isinstance(expr, ast.Typeswitch):
        _free(expr.operand, bound, out)
        for case in expr.cases:
            inner = bound | {case.var} if case.var is not None else bound
            _free(case.body, inner, out)
        inner = bound | {expr.default.var} if expr.default.var is not None else bound
        _free(expr.default.body, inner, out)
        return
    for child in expr.children():
        _free(child, bound, out)
