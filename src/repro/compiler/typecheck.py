"""Static type inference.

The tutorial's three goals for the type system:

1. detect statically errors in the queries;
2. infer the type of the result of valid queries;
3. ensure statically that the result conforms to an expected type.

This pass walks the core tree bottom-up computing a
:class:`StaticType` — an item-kind lattice point plus an occurrence
range — per expression.  It is deliberately *optimistic* (the paper's
open problem 18 asks for exactly that): a query is rejected only when
evaluation could never succeed, e.g. arithmetic over two values that
are statically booleans, or a path step over a statically atomic
value.  ``infer`` returns the root type; ``check_against`` implements
goal 3 for an expected sequence type.

The inferred facts also power optimizations: ``singleton`` results
feed FOR-minimization, and numeric-vs-untyped knowledge could avoid
runtime dispatch (left as future work, as in the talk).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.context import StaticContext
from repro.compiler.sequencetype import SequenceType, resolve_sequence_type
from repro.errors import StaticTypeError
from repro.qname import FN_NS
from repro.xquery import ast
from repro.xsd import types as T

# item-kind lattice: specific kinds below, "item" on top, "empty" at bottom
_NODE_KINDS = {"element", "attribute", "document", "text", "comment",
               "processing-instruction", "node"}


@dataclass(frozen=True)
class StaticType:
    """An inferred type: item kind + atomic type (if atomic) + occurrence.

    ``occurrence`` uses the usual alphabet plus ``"0"`` (statically
    empty).  ``kind`` is ``"atomic"``, a node kind, ``"node"``,
    ``"item"`` (unknown), or ``"empty"``.
    """

    kind: str = "item"
    atomic: T.AtomicType | None = None
    occurrence: str = "*"

    def __str__(self) -> str:
        if self.kind == "empty" or self.occurrence == "0":
            return "empty()"
        core = str(self.atomic) if self.kind == "atomic" and self.atomic \
            else (f"{self.kind}()" if self.kind != "item" else "item()")
        return core + (self.occurrence if self.occurrence != "" else "")

    # -- occurrence helpers --------------------------------------------------

    def maybe_empty(self) -> bool:
        return self.occurrence in ("?", "*", "0")

    def maybe_many(self) -> bool:
        return self.occurrence in ("+", "*")

    def always_empty(self) -> bool:
        return self.occurrence == "0" or self.kind == "empty"

    def is_node_kind(self) -> bool:
        return self.kind in _NODE_KINDS

    def could_be_numeric(self) -> bool:
        if self.always_empty():
            return True  # () is fine for arithmetic (result is ())
        if self.kind in ("item",) or self.is_node_kind():
            return True  # nodes atomize to untypedAtomic → double
        if self.kind == "atomic":
            return (self.atomic is None or T.is_numeric(self.atomic)
                    or self.atomic is T.UNTYPED_ATOMIC
                    or self.atomic is T.ANY_ATOMIC
                    or self.atomic.primitive in (T.XS_DATE, T.XS_DATETIME,
                                                 T.XS_TIME, T.XS_DURATION))
        return False

    def could_be_node(self) -> bool:
        return self.kind in ("item",) or self.is_node_kind() or self.always_empty()


ITEM_STAR = StaticType("item", None, "*")
EMPTY = StaticType("empty", None, "0")
BOOLEAN = StaticType("atomic", T.XS_BOOLEAN, "")
INTEGER = StaticType("atomic", T.XS_INTEGER, "")
STRING = StaticType("atomic", T.XS_STRING, "")
NODE_STAR = StaticType("node", None, "*")


def _occ_star(occ: str) -> str:
    """Occurrence after a flattening/iteration context."""
    return "*" if occ in ("*", "+", "?") else occ


def _occ_concat(a: str, b: str) -> str:
    order = "0" "?" "" "+" "*"
    if a == "0":
        return b
    if b == "0":
        return a
    if a in ("", "+") or b in ("", "+"):
        return "+"
    return "*"


def _occ_union(a: str, b: str) -> str:
    if a == b:
        return a
    pairs = {frozenset(x) for x in ()}
    s = {a, b}
    if s <= {"0", "?"}:
        return "?"
    if s == {"0", ""}:
        return "?"
    if s <= {"", "+"}:
        return "+"
    if s <= {"", "?", "0"}:
        return "?"
    return "*"


_FN_RETURNS: dict[str, StaticType] = {
    "count": INTEGER,
    "string": STRING,
    "string-length": INTEGER,
    "concat": STRING,
    "string-join": STRING,
    "normalize-space": STRING,
    "upper-case": STRING,
    "lower-case": STRING,
    "substring": STRING,
    "substring-before": STRING,
    "substring-after": STRING,
    "translate": STRING,
    "replace": STRING,
    "name": STRING,
    "local-name": STRING,
    "true": BOOLEAN,
    "false": BOOLEAN,
    "not": BOOLEAN,
    "boolean": BOOLEAN,
    "empty": BOOLEAN,
    "exists": BOOLEAN,
    "contains": BOOLEAN,
    "starts-with": BOOLEAN,
    "ends-with": BOOLEAN,
    "matches": BOOLEAN,
    "deep-equal": BOOLEAN,
    "position": INTEGER,
    "last": INTEGER,
    "doc": StaticType("document", None, "?"),
    "document": StaticType("document", None, "?"),
    "root": StaticType("node", None, "?"),
    "data": StaticType("atomic", T.ANY_ATOMIC, "*"),
    "distinct-values": StaticType("atomic", T.ANY_ATOMIC, "*"),
    "sum": StaticType("atomic", T.ANY_ATOMIC, ""),
    "avg": StaticType("atomic", T.ANY_ATOMIC, "?"),
    "min": StaticType("atomic", T.ANY_ATOMIC, "?"),
    "max": StaticType("atomic", T.ANY_ATOMIC, "?"),
    "abs": StaticType("atomic", T.ANY_ATOMIC, "?"),
    "number": StaticType("atomic", T.XS_DOUBLE, ""),
}


class TypeChecker:
    """One inference pass over a core expression tree."""

    def __init__(self, ctx: StaticContext | None = None):
        self.ctx = ctx or StaticContext()
        #: variable name → inferred/declared static type (scoped via dict copies)
        self._env: dict = {}
        for name, decl in self.ctx.variables.items():
            self._env[name] = self._from_decl(decl)

    def _from_decl(self, decl) -> StaticType:
        if decl is None:
            return ITEM_STAR
        try:
            seq_type = resolve_sequence_type(decl, self.ctx)
        except Exception:
            return ITEM_STAR
        return _from_sequence_type(seq_type)

    # -- public API ----------------------------------------------------------

    def infer(self, expr: ast.Expr) -> StaticType:
        t = self._infer(expr, dict(self._env))
        expr.annotations["static_type"] = t
        return t

    def check_against(self, expr: ast.Expr, expected: SequenceType) -> StaticType:
        """Goal 3: static conformance to an expected sequence type."""
        t = self.infer(expr)
        if t.always_empty() and not expected.allows_empty():
            raise StaticTypeError(
                f"expression is statically empty but {expected} is required")
        if t.occurrence in ("+",) and not expected.allows_many() \
                and not expected.allows_empty() and expected.occurrence == "":
            # "+" *may* be a singleton — optimistic: allowed
            pass
        if expected.item_kind == "atomic" and t.is_node_kind() is False \
                and t.kind == "atomic" and t.atomic is not None \
                and expected.atomic_type is not None:
            if not (t.atomic.derives_from(expected.atomic_type)
                    or expected.atomic_type is T.ANY_ATOMIC
                    or t.atomic is T.UNTYPED_ATOMIC
                    or (T.is_numeric(t.atomic) and T.is_numeric(expected.atomic_type))):
                raise StaticTypeError(
                    f"expression has static type {t}, required {expected}")
        return t

    # -- inference -----------------------------------------------------------

    def _infer(self, expr: ast.Expr, env: dict) -> StaticType:
        method = getattr(self, f"_t_{type(expr).__name__}", None)
        result = method(expr, env) if method is not None else self._default(expr, env)
        expr.annotations["static_type"] = result
        return result

    def _default(self, expr: ast.Expr, env: dict) -> StaticType:
        for child in expr.children():
            self._infer(child, env)
        return ITEM_STAR

    # primaries --------------------------------------------------------------

    def _t_Literal(self, expr: ast.Literal, env) -> StaticType:
        return StaticType("atomic", expr.value.type, "")

    def _t_EmptySequence(self, expr, env) -> StaticType:
        return EMPTY

    def _t_VarRef(self, expr: ast.VarRef, env) -> StaticType:
        return env.get(expr.name, ITEM_STAR)

    def _t_ContextItem(self, expr, env) -> StaticType:
        return StaticType("item", None, "")

    def _t_SequenceExpr(self, expr: ast.SequenceExpr, env) -> StaticType:
        occ = "0"
        kinds = set()
        atomics = set()
        for item in expr.items:
            t = self._infer(item, env)
            occ = _occ_concat(occ, t.occurrence)
            kinds.add(t.kind)
            if t.atomic is not None:
                atomics.add(t.atomic)
        kinds.discard("empty")
        kind = kinds.pop() if len(kinds) == 1 else "item"
        atomic = atomics.pop() if kind == "atomic" and len(atomics) == 1 else None
        return StaticType(kind, atomic, occ)

    def _t_RangeExpr(self, expr: ast.RangeExpr, env) -> StaticType:
        self._infer(expr.low, env)
        self._infer(expr.high, env)
        return StaticType("atomic", T.XS_INTEGER, "*")

    # bindings ---------------------------------------------------------------

    def _t_LetExpr(self, expr: ast.LetExpr, env) -> StaticType:
        value_t = self._infer(expr.value, env)
        inner = dict(env)
        inner[expr.var] = value_t
        return self._infer(expr.body, inner)

    def _t_ForExpr(self, expr: ast.ForExpr, env) -> StaticType:
        seq_t = self._infer(expr.seq, env)
        inner = dict(env)
        inner[expr.var] = StaticType(seq_t.kind, seq_t.atomic, "")
        if expr.pos_var is not None:
            inner[expr.pos_var] = INTEGER
        body_t = self._infer(expr.body, inner)
        if seq_t.always_empty():
            return EMPTY
        occ = "*" if seq_t.maybe_many() or body_t.occurrence in ("*", "?", "0") \
            else body_t.occurrence
        if seq_t.maybe_empty():
            occ = _occ_union(occ, "0")
        return StaticType(body_t.kind, body_t.atomic, occ)

    def _t_Quantified(self, expr: ast.Quantified, env) -> StaticType:
        seq_t = self._infer(expr.seq, env)
        inner = dict(env)
        inner[expr.var] = StaticType(seq_t.kind, seq_t.atomic, "")
        self._infer(expr.cond, inner)
        return BOOLEAN

    def _t_IfExpr(self, expr: ast.IfExpr, env) -> StaticType:
        self._infer(expr.cond, env)
        then_t = self._infer(expr.then, env)
        else_t = self._infer(expr.orelse, env)
        kind = then_t.kind if then_t.kind == else_t.kind else "item"
        atomic = then_t.atomic if then_t.atomic is else_t.atomic else None
        return StaticType(kind, atomic, _occ_union(then_t.occurrence,
                                                   else_t.occurrence))

    # operators ----------------------------------------------------------------

    def _t_Arithmetic(self, expr: ast.Arithmetic, env) -> StaticType:
        left = self._infer(expr.left, env)
        right = self._infer(expr.right, env)
        for side, t in (("left", left), ("right", right)):
            if not t.could_be_numeric():
                raise StaticTypeError(
                    f"{side} operand of '{expr.op}' has static type {t}, "
                    f"which can never be numeric")
        occ = "?" if (left.maybe_empty() or right.maybe_empty()) else ""
        atomic = None
        if left.kind == "atomic" and right.kind == "atomic" \
                and left.atomic is not None and right.atomic is not None \
                and T.is_numeric(left.atomic) and T.is_numeric(right.atomic):
            rank = {"decimal": 0, "float": 1, "double": 2}
            la = left.atomic.primitive
            ra = right.atomic.primitive
            atomic = la if rank[la.name.local] >= rank[ra.name.local] else ra
            if atomic is T.XS_DECIMAL and expr.op != "div" \
                    and left.atomic.derives_from(T.XS_INTEGER) \
                    and right.atomic.derives_from(T.XS_INTEGER):
                atomic = T.XS_INTEGER
        return StaticType("atomic", atomic, occ)

    def _t_UnaryExpr(self, expr: ast.UnaryExpr, env) -> StaticType:
        t = self._infer(expr.operand, env)
        if not t.could_be_numeric():
            raise StaticTypeError(
                f"operand of unary '{expr.op}' has static type {t}")
        return StaticType("atomic", t.atomic if t.kind == "atomic" else None,
                          "?" if t.maybe_empty() else "")

    def _t_Comparison(self, expr: ast.Comparison, env) -> StaticType:
        left = self._infer(expr.left, env)
        right = self._infer(expr.right, env)
        if expr.family in ("node", "order"):
            for side, t in (("left", left), ("right", right)):
                if not t.could_be_node():
                    raise StaticTypeError(
                        f"{side} operand of '{expr.op}' must be a node, "
                        f"static type is {t}")
            occ = "?" if (left.maybe_empty() or right.maybe_empty()) else ""
            return StaticType("atomic", T.XS_BOOLEAN, occ)
        if expr.family == "value":
            occ = "?" if (left.maybe_empty() or right.maybe_empty()) else ""
            return StaticType("atomic", T.XS_BOOLEAN, occ)
        return BOOLEAN

    def _t_AndExpr(self, expr, env) -> StaticType:
        self._infer(expr.left, env)
        self._infer(expr.right, env)
        return BOOLEAN

    _t_OrExpr = _t_AndExpr

    def _t_SetOp(self, expr: ast.SetOp, env) -> StaticType:
        left = self._infer(expr.left, env)
        right = self._infer(expr.right, env)
        for side, t in (("left", left), ("right", right)):
            if t.kind == "atomic" and not t.always_empty():
                raise StaticTypeError(
                    f"{side} operand of '{expr.op}' is statically atomic; "
                    "set operators require nodes")
        return NODE_STAR

    # paths ----------------------------------------------------------------------

    def _t_RootExpr(self, expr, env) -> StaticType:
        return StaticType("node", None, "")

    def _t_Step(self, expr: ast.Step, env) -> StaticType:
        kind = expr.test.kind
        if kind == "node" and expr.test.name is not None:
            kind = "attribute" if expr.axis == "attribute" else "element"
        occ = "?" if expr.axis in ("parent", "self") else "*"
        return StaticType(kind if kind != "node" else "node", None, occ)

    def _t_PathExpr(self, expr: ast.PathExpr, env) -> StaticType:
        left = self._infer(expr.left, env)
        if left.kind == "atomic" and not left.always_empty():
            raise StaticTypeError(
                f"path step applied to a statically atomic value ({left})")
        right = self._infer(expr.right, env)
        if left.always_empty():
            return EMPTY
        occ = "*" if left.maybe_many() or right.maybe_many() else \
            _occ_union(right.occurrence, "0") if left.maybe_empty() else \
            right.occurrence
        return StaticType(right.kind, right.atomic, occ)

    def _t_Filter(self, expr: ast.Filter, env) -> StaticType:
        base = self._infer(expr.base, env)
        self._infer(expr.predicate, env)
        occ = "?" if base.occurrence in ("", "?") else "*"
        return StaticType(base.kind, base.atomic, occ)

    def _t_DDO(self, expr: ast.DDO, env) -> StaticType:
        inner = self._infer(expr.operand, env)
        return StaticType(inner.kind, inner.atomic, inner.occurrence)

    # constructors -----------------------------------------------------------

    def _t_ElementCtor(self, expr: ast.ElementCtor, env) -> StaticType:
        for child in expr.children():
            self._infer(child, env)
        return StaticType("element", None, "")

    def _t_AttributeCtor(self, expr, env) -> StaticType:
        for child in expr.children():
            self._infer(child, env)
        return StaticType("attribute", None, "")

    def _t_TextCtor(self, expr, env) -> StaticType:
        self._infer(expr.content, env)
        return StaticType("text", None, "?")

    def _t_CommentCtor(self, expr, env) -> StaticType:
        self._infer(expr.content, env)
        return StaticType("comment", None, "")

    def _t_DocumentCtor(self, expr, env) -> StaticType:
        self._infer(expr.content, env)
        return StaticType("document", None, "")

    def _t_PICtor(self, expr, env) -> StaticType:
        for child in expr.children():
            self._infer(child, env)
        return StaticType("processing-instruction", None, "")

    # type operators ---------------------------------------------------------

    def _t_InstanceOf(self, expr, env) -> StaticType:
        self._infer(expr.operand, env)
        return BOOLEAN

    _t_CastableExpr = _t_InstanceOf

    def _t_CastExpr(self, expr: ast.CastExpr, env) -> StaticType:
        self._infer(expr.operand, env)
        target = self.ctx.lookup_type(expr.type_name)
        atomic = target if isinstance(target, T.AtomicType) else None
        return StaticType("atomic", atomic, "?" if expr.optional else "")

    def _t_TreatExpr(self, expr: ast.TreatExpr, env) -> StaticType:
        self._infer(expr.operand, env)
        try:
            return _from_sequence_type(resolve_sequence_type(expr.seq_type, self.ctx))
        except Exception:
            return ITEM_STAR

    def _t_ParamConvert(self, expr: ast.ParamConvert, env) -> StaticType:
        self._infer(expr.operand, env)
        try:
            return _from_sequence_type(resolve_sequence_type(expr.seq_type, self.ctx))
        except Exception:
            return ITEM_STAR

    def _t_ValidateExpr(self, expr, env) -> StaticType:
        self._infer(expr.operand, env)
        return StaticType("node", None, "")

    # functions ----------------------------------------------------------------

    def _t_FunctionCall(self, expr: ast.FunctionCall, env) -> StaticType:
        for arg in expr.args:
            self._infer(arg, env)
        if expr.name.uri == FN_NS and expr.name.local in _FN_RETURNS:
            return _FN_RETURNS[expr.name.local]
        # constructor functions xs:TYPE(...) → that type, occurrence "?"
        atomic = self.ctx.lookup_type(expr.name)
        if isinstance(atomic, T.AtomicType) and len(expr.args) == 1:
            return StaticType("atomic", atomic, "?")
        decl = self.ctx.lookup_function(expr.name, len(expr.args))
        if decl is not None and decl.return_type is not None:
            try:
                return _from_sequence_type(
                    resolve_sequence_type(decl.return_type, self.ctx))
            except Exception:
                return ITEM_STAR
        return ITEM_STAR

    def _t_Typeswitch(self, expr: ast.Typeswitch, env) -> StaticType:
        operand_t = self._infer(expr.operand, env)
        result: StaticType | None = None
        for case in list(expr.cases) + [expr.default]:
            inner = dict(env)
            if case.var is not None:
                inner[case.var] = operand_t
            t = self._infer(case.body, inner)
            result = t if result is None else StaticType(
                t.kind if t.kind == result.kind else "item",
                t.atomic if t.atomic is result.atomic else None,
                _occ_union(t.occurrence, result.occurrence))
        return result or ITEM_STAR

    def _t_FLWOR(self, expr: ast.FLWOR, env) -> StaticType:
        inner = dict(env)
        for clause in expr.clauses:
            t = self._infer(clause.expr, inner)
            if isinstance(clause, ast.ForClause):
                inner[clause.var] = StaticType(t.kind, t.atomic, "")
                if clause.pos_var is not None:
                    inner[clause.pos_var] = INTEGER
            else:
                inner[clause.var] = t
        if expr.where is not None:
            self._infer(expr.where, inner)
        for gvar, key in expr.group:
            key_t = self._infer(key, inner)
            inner[gvar] = StaticType("atomic",
                                     key_t.atomic if key_t.kind == "atomic" else None,
                                     "?")
        if expr.group:
            # post-grouping, every clause variable holds a sequence
            for clause in expr.clauses:
                prior = inner.get(clause.var, ITEM_STAR)
                inner[clause.var] = StaticType(prior.kind, prior.atomic, "*")
        for spec in expr.order:
            self._infer(spec.expr, inner)
        ret = self._infer(expr.ret, inner)
        return StaticType(ret.kind, ret.atomic, "*")

    def _t_OrderedExpr(self, expr, env) -> StaticType:
        return self._infer(expr.operand, env)


def _from_sequence_type(seq_type: SequenceType) -> StaticType:
    if seq_type.item_kind == "empty":
        return EMPTY
    if seq_type.item_kind == "atomic":
        return StaticType("atomic", seq_type.atomic_type, seq_type.occurrence)
    return StaticType(seq_type.item_kind, None, seq_type.occurrence)


def infer_type(expr: ast.Expr, ctx: StaticContext | None = None) -> StaticType:
    """Infer the static type of a core expression."""
    return TypeChecker(ctx).infer(expr)
