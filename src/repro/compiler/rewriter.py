"""The rewrite engine.

"Our optimizer: a library of rewriting rules (~100), and a hard-coded
strategy (trial and error ...).  Rewriting rules contract:
expr1 → expr2 with type(expr2) ⊆ type(expr1) and
freeVars(expr2) ⊆ freeVars(expr1).  Simple: no rewriting alternatives,
no cost model."

The engine applies every rule at every node, bottom-up, re-running the
analysis pass between sweeps, until a fixpoint (or the sweep cap).
Each rule is a function ``rule(expr, static_ctx) -> Expr | None``;
None means "no change".  In debug mode the engine enforces the
free-variables half of the paper's contract.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.compiler.analysis import analyze, analyze_incremental, free_vars
from repro.compiler.context import StaticContext
from repro.xquery import ast

Rule = Callable[[ast.Expr, StaticContext], Optional[ast.Expr]]


class RewriteEngine:
    """Applies a rule library to fixpoint."""

    MAX_SWEEPS = 10

    def __init__(self, rules: Sequence[tuple[str, Rule]],
                 static_ctx: StaticContext | None = None,
                 check_contract: bool = False):
        self.rules = list(rules)
        self.ctx = static_ctx or StaticContext()
        self.check_contract = check_contract
        #: rule name → number of times it fired (ablation benches read this)
        self.fired: dict[str, int] = {}

    def rewrite(self, expr: ast.Expr) -> ast.Expr:
        for _sweep in range(self.MAX_SWEEPS):
            analyze(expr, self.ctx)
            new_expr, changed = self._sweep(expr)
            expr = new_expr
            if not changed:
                break
        analyze(expr, self.ctx)
        return expr

    def _sweep(self, expr: ast.Expr) -> tuple[ast.Expr, bool]:
        changed = False

        def visit(node: ast.Expr) -> ast.Expr:
            nonlocal changed
            rebuilt = node.with_children(visit)
            if rebuilt is not node:
                changed = True
                analyze_incremental(rebuilt, self.ctx)
            current = rebuilt
            for name, rule in self.rules:
                replacement = rule(current, self.ctx)
                if replacement is not None and replacement is not current:
                    if self.check_contract:
                        before = free_vars(current)
                        after = free_vars(replacement)
                        if not after <= before:
                            raise AssertionError(
                                f"rule {name} introduced free variables "
                                f"{after - before}")
                    self.fired[name] = self.fired.get(name, 0) + 1
                    changed = True
                    analyze_incremental(replacement, self.ctx)
                    current = replacement
            return current

        return visit(expr), changed


def default_rules() -> list[tuple[str, Rule]]:
    """The standard rule library, in application order."""
    from repro.compiler.rules import basic, flwor, lets, paths

    return [
        ("constant-folding", basic.constant_folding),
        ("boolean-simplification", basic.boolean_simplification),
        ("if-simplification", basic.if_simplification),
        ("typeswitch-to-if", basic.typeswitch_shortcut),
        ("path-simplification", paths.path_simplification),
        ("descendant-collapse", paths.descendant_collapse),
        ("parent-elimination", paths.parent_elimination),
        ("ddo-elimination", paths.ddo_elimination),
        ("let-folding", lets.let_folding),
        ("dead-let-elimination", lets.dead_let_elimination),
        ("common-subexpression", lets.common_subexpression),
        ("for-unnesting", flwor.for_unnesting),
        ("for-let-hoisting", flwor.loop_invariant_hoisting),
        ("for-minimization", flwor.for_minimization),
    ]
