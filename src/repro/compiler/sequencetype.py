"""Runtime-checkable sequence types.

The XQuery type system's workhorse: ``ItemType OccurrenceIndicator``.
Used by ``instance of``, ``typeswitch``, ``treat as``, function
parameter conversion, and the static type checker's lattice.

Occurrence algebra: ``""`` (one), ``"?"`` (zero-or-one), ``"+"``
(one-or-more), ``"*"`` (zero-or-more), plus ``"0"`` for ``empty()``.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import StaticTypeError
from repro.qname import QName
from repro.xdm.items import AtomicValue
from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    PINode,
    TextNode,
)
from repro.xquery.ast import SequenceTypeAST
from repro.xsd import types as T

_KIND_CLASSES = {
    "element": ElementNode,
    "attribute": AttributeNode,
    "document": DocumentNode,
    "text": TextNode,
    "comment": CommentNode,
    "processing-instruction": PINode,
}


class SequenceType:
    """A resolved, checkable sequence type."""

    __slots__ = ("item_kind", "name", "atomic_type", "occurrence", "pi_target")

    def __init__(self, item_kind: str, occurrence: str = "",
                 name: QName | None = None,
                 atomic_type: T.AtomicType | None = None,
                 pi_target: str | None = None):
        self.item_kind = item_kind      # "empty"|"item"|"atomic"|node kinds|"node"
        self.occurrence = occurrence    # ""|"?"|"*"|"+"|"0"
        self.name = name
        self.atomic_type = atomic_type
        self.pi_target = pi_target

    def __repr__(self) -> str:
        if self.item_kind == "empty":
            return "empty()"
        if self.item_kind == "atomic":
            return f"{self.atomic_type}{self.occurrence}"
        inner = str(self.name) if self.name else ""
        return f"{self.item_kind}({inner}){self.occurrence}"

    # -- matching ------------------------------------------------------------

    def matches_item(self, item: Any) -> bool:
        kind = self.item_kind
        if kind == "empty":
            return False
        if kind == "item":
            return True
        if kind == "atomic":
            if not isinstance(item, AtomicValue):
                return False
            assert self.atomic_type is not None
            if item.type.derives_from(self.atomic_type):
                return True
            # untypedAtomic matches xdt:untypedAtomic only (strict), but
            # anyAtomicType accepts everything atomic
            return self.atomic_type is T.ANY_ATOMIC
        if not isinstance(item, Node):
            return False
        if kind == "node":
            return True
        cls = _KIND_CLASSES.get(kind)
        if cls is None or not isinstance(item, cls):
            return False
        if kind == "processing-instruction" and self.pi_target is not None:
            return item.target == self.pi_target
        if self.name is not None and kind in ("element", "attribute"):
            if self.name.local != "*" and item.name.local != self.name.local:
                return False
            if self.name.uri != "*" and item.name.uri != self.name.uri:
                return False
        return True

    def matches(self, items: list) -> bool:
        """Does a materialized sequence conform?"""
        n = len(items)
        occ = self.occurrence
        if self.item_kind == "empty" or occ == "0":
            return n == 0
        if occ == "" and n != 1:
            return False
        if occ == "?" and n > 1:
            return False
        if occ == "+" and n < 1:
            return False
        return all(self.matches_item(item) for item in items)

    # -- occurrence algebra ----------------------------------------------------

    def allows_empty(self) -> bool:
        return self.occurrence in ("?", "*", "0") or self.item_kind == "empty"

    def allows_many(self) -> bool:
        return self.occurrence in ("*", "+")


#: Common singletons.
ITEM_STAR = SequenceType("item", "*")
ITEM_ONE = SequenceType("item", "")
EMPTY = SequenceType("empty", "0")
NODE_STAR = SequenceType("node", "*")
BOOLEAN_ONE = SequenceType("atomic", "", atomic_type=T.XS_BOOLEAN)
INTEGER_ONE = SequenceType("atomic", "", atomic_type=T.XS_INTEGER)
STRING_ONE = SequenceType("atomic", "", atomic_type=T.XS_STRING)
NUMERIC_OPT = SequenceType("atomic", "?", atomic_type=T.ANY_ATOMIC)


def resolve_sequence_type(st: SequenceTypeAST, static_ctx=None) -> SequenceType:
    """Resolve a parsed sequence type against the static context."""
    if st.item_kind == "empty":
        return EMPTY
    if st.item_kind == "atomic":
        assert st.type_name is not None
        atype = None
        if static_ctx is not None:
            atype = static_ctx.lookup_type(st.type_name)
        else:
            registry = T.TypeRegistry()
            atype = registry.lookup(st.type_name)
        if atype is None:
            raise StaticTypeError(f"unknown atomic type {st.type_name}", code="XPST0051")
        if not isinstance(atype, T.AtomicType):
            raise StaticTypeError(
                f"{st.type_name} is a complex type; sequence types need simple types")
        return SequenceType("atomic", st.occurrence, atomic_type=atype)
    return SequenceType(st.item_kind, st.occurrence, name=st.name)


def occurrence_union(a: str, b: str) -> str:
    """The occurrence covering either alternative (for if/typeswitch)."""
    order = {"0": 0, "": 1, "?": 2, "+": 3, "*": 4}
    rank = max(order.get(a, 4), order.get(b, 4))
    if {a, b} == {"0", ""} or {a, b} == {"0", "?"}:
        return "?"
    if "0" in (a, b) and rank >= 3:
        return "*"
    for occ, r in order.items():
        if r == rank:
            return occ
    return "*"
