"""Parallelizability analysis — the tutorial's "Parallel execution" slide.

"Obviously certain subexpressions of an expression can (and should...)
be executed in parallel — only if there is no data dependency; only if
the compiler guarantees that the given subexpressions are executed."

This module answers the *compiler's* half of that: given an expression,
which of its direct subexpressions form a parallelizable group?  The
conditions, derived from the slide and the analysis annotations:

1. **guaranteed execution** — the subexpressions are evaluated
   unconditionally when the parent is (sequence members, both sides of
   arithmetic/comparison, FLWOR clause sources; NOT an ``if`` branch,
   NOT the right side of ``and``/``or`` which may short-circuit);
2. **no data dependency** — no subexpression reads a variable another
   one binds (bindings are introduced only by let/for/quantifiers, so
   sibling subexpressions never depend on each other through variables;
   what *can* couple them is node construction order, hence:)
3. **no side effects** — none of them creates nodes (construction
   order/identity is observable);
4. **determinism** — none of them depends on mutable dynamic-context
   state beyond the focus they share (the declarative function flags).

The actual parallel runtime is out of scope for a GIL-bound
interpreter (the paper likewise defers to DeWitt/Gray); the analysis
is the reusable piece, and :func:`parallel_groups` exposes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime import functions as fnlib
from repro.xquery import ast


@dataclass(frozen=True)
class ParallelGroup:
    """A set of sibling subexpressions safe to evaluate concurrently."""

    parent_kind: str
    members: tuple[ast.Expr, ...]
    #: "horizontal" = independent siblings; "vertical" = producer/consumer
    #: pipeline stages (always legal in a pull model)
    orientation: str = "horizontal"

    def __len__(self) -> int:
        return len(self.members)


def _is_pure(expr: ast.Expr) -> bool:
    """No node construction and no non-deterministic function below."""
    for node in expr.walk():
        if node.annotations.get("creates_nodes", False):
            return False
        if isinstance(node, ast.FunctionCall):
            builtin = fnlib.lookup(node.name, len(node.args))
            if builtin is None:
                return False  # unknown/user function: be conservative
            if not builtin.deterministic:
                return False
    return True


def parallel_groups(expr: ast.Expr, min_size: int = 2) -> list[ParallelGroup]:
    """All parallelizable sibling groups in the tree (pre-order).

    The input must already be analyzed (``repro.compiler.analysis``),
    since purity checks read the annotations.
    """
    groups: list[ParallelGroup] = []

    def visit(node: ast.Expr) -> None:
        candidates: list[ast.Expr] = []
        if isinstance(node, ast.SequenceExpr):
            candidates = list(node.items)
        elif isinstance(node, (ast.Arithmetic, ast.Comparison, ast.SetOp)):
            candidates = [node.left, node.right]
        elif isinstance(node, ast.FunctionCall):
            candidates = list(node.args)
        elif isinstance(node, ast.FLWOR):
            # clause *sources* of independent FOR clauses evaluate
            # unconditionally; LET values are lazy, skip them
            candidates = [c.expr for c in node.clauses
                          if isinstance(c, ast.ForClause)]
        # if/and/or are excluded: branches are conditional / short-circuit

        eligible = [c for c in candidates if _is_pure(c)]
        if len(eligible) >= min_size:
            groups.append(ParallelGroup(type(node).__name__, tuple(eligible)))
        for child in node.children():
            visit(child)

    visit(expr)
    return groups


def is_pipeline_parallel(expr: ast.Expr) -> bool:
    """Vertical parallelism: a path/FLWOR chain is a pull pipeline whose
    stages could run as a producer/consumer pair — always structurally
    true for paths in this engine; reported for EXPLAIN output."""
    return any(isinstance(node, (ast.PathExpr, ast.ForExpr))
               for node in expr.walk())
