"""Parallelizability analysis — the tutorial's "Parallel execution" slide.

"Obviously certain subexpressions of an expression can (and should...)
be executed in parallel — only if there is no data dependency; only if
the compiler guarantees that the given subexpressions are executed."

This module answers the *compiler's* half of that: given an expression,
which of its direct subexpressions form a parallelizable group?  The
conditions, derived from the slide and the analysis annotations:

1. **guaranteed execution** — the subexpressions are evaluated
   unconditionally when the parent is (sequence members, both sides of
   arithmetic/comparison, FLWOR clause sources; NOT an ``if`` branch,
   NOT the right side of ``and``/``or`` which may short-circuit);
2. **no data dependency** — no subexpression reads a variable another
   one binds (bindings are introduced only by let/for/quantifiers, so
   sibling subexpressions never depend on each other through variables;
   what *can* couple them is node construction order, hence:)
3. **no side effects** — none of them creates nodes (construction
   order/identity is observable);
4. **determinism** — none of them depends on mutable dynamic-context
   state beyond the focus they share (the declarative function flags).

:func:`parallel_groups` exposes the whole-tree analysis (EXPLAIN and
tests use it); :func:`is_parallel_safe` and
:func:`independent_for_clauses` are the per-node entry points the code
generator calls when an executor is configured, to decide — at compile
time — which sibling subexpressions become a ``ParallelSeq`` fan-out
(see ``repro.service.executors`` for the runtime half).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime import functions as fnlib
from repro.xquery import ast


@dataclass(frozen=True)
class ParallelGroup:
    """A set of sibling subexpressions safe to evaluate concurrently."""

    parent_kind: str
    members: tuple[ast.Expr, ...]
    #: "horizontal" = independent siblings; "vertical" = producer/consumer
    #: pipeline stages (always legal in a pull model)
    orientation: str = "horizontal"

    def __len__(self) -> int:
        return len(self.members)


def _is_pure(expr: ast.Expr) -> bool:
    """No node construction and no non-deterministic function below."""
    for node in expr.walk():
        if node.annotations.get("creates_nodes", False):
            return False
        if isinstance(node, ast.FunctionCall):
            builtin = fnlib.lookup(node.name, len(node.args))
            if builtin is None:
                return False  # unknown/user function: be conservative
            if not builtin.deterministic:
                return False
    return True


def is_parallel_safe(expr: ast.Expr) -> bool:
    """May ``expr`` run concurrently with its siblings?

    Requires the tree to be *analyzed*: an unannotated node means the
    analysis pass never ran, and treating it as pure would let a
    constructor slip into a parallel group — so unannotated trees are
    conservatively not safe.
    """
    if "creates_nodes" not in expr.annotations:
        return False
    return _is_pure(expr)


def independent_for_clauses(flwor: "ast.FLWOR") -> list[int]:
    """Indices of FOR clauses whose *sources* are mutually independent.

    A clause source qualifies when it is pure **and** references no
    variable bound by an earlier clause of the same FLWOR (``for $x in
    $d/a, $y in $x/b`` — $y's source depends on $x, so only clause 0
    qualifies).  Qualifying sources can all be evaluated concurrently
    before tuple formation starts.
    """
    from repro.compiler.analysis import free_vars

    out: list[int] = []
    bound: set = set()
    for i, clause in enumerate(flwor.clauses):
        if isinstance(clause, ast.ForClause):
            if is_parallel_safe(clause.expr) and \
                    not (free_vars(clause.expr) & bound):
                out.append(i)
        bound.add(clause.var)
        pos_var = getattr(clause, "pos_var", None)
        if pos_var is not None:
            bound.add(pos_var)
    return out


def parallel_groups(expr: ast.Expr, min_size: int = 2) -> list[ParallelGroup]:
    """All parallelizable sibling groups in the tree (pre-order).

    The input must already be analyzed (``repro.compiler.analysis``),
    since purity checks read the annotations.
    """
    groups: list[ParallelGroup] = []

    def visit(node: ast.Expr) -> None:
        candidates: list[ast.Expr] = []
        if isinstance(node, ast.SequenceExpr):
            candidates = list(node.items)
        elif isinstance(node, (ast.Arithmetic, ast.Comparison, ast.SetOp)):
            candidates = [node.left, node.right]
        elif isinstance(node, ast.FunctionCall):
            candidates = list(node.args)
        elif isinstance(node, ast.FLWOR):
            # clause *sources* of independent FOR clauses evaluate
            # unconditionally; LET values are lazy, skip them, and a
            # source reading an earlier clause's variable is dependent
            candidates = [node.clauses[i].expr
                          for i in independent_for_clauses(node)]
        # if/and/or are excluded: branches are conditional / short-circuit

        eligible = [c for c in candidates if _is_pure(c)]
        if len(eligible) >= min_size:
            groups.append(ParallelGroup(type(node).__name__, tuple(eligible)))
        for child in node.children():
            visit(child)

    visit(expr)
    return groups


def is_pipeline_parallel(expr: ast.Expr) -> bool:
    """Vertical parallelism: a path/FLWOR chain is a pull pipeline whose
    stages could run as a producer/consumer pair — always structurally
    true for paths in this engine; reported for EXPLAIN output."""
    return any(isinstance(node, (ast.PathExpr, ast.ForExpr))
               for node in expr.walk())
