"""repro — a streaming XML/XQuery query processor.

A faithful reproduction of the system architecture presented in
"XML Query Processing" (D. Florescu, ICDE 2004): an XQuery engine with
a normalizing compiler, a rewrite-rule optimizer, and a lazy pull-based
runtime, over from-scratch XML parsing, the XQuery Data Model, a
simplified XML Schema, the TokenStream binary representation, labeled
storage with structural/twig joins, and a streaming XPath automaton.

Quickstart::

    import repro

    result = repro.execute(
        "for $b in $doc//book where $b/@year < 1980 return $b/title",
        variables={"doc": repro.xml(
            "<bib><book year='1967'><title>T</title></book></bib>")},
    )
    print(result.serialize())

``repro.compile`` / ``repro.execute`` / ``repro.explain`` share one
default engine (and its compile cache); plain strings in
``variables=`` bind ``xs:string`` atomics — wrap XML text in
``repro.xml(...)`` to bind a parsed document.  For concurrent
execution with deadlines, admission control, and parallel-group plans,
see :class:`repro.service.QueryService`.
"""

from repro.api import catalog, compile, configure, execute, explain
from repro.catalog import DocumentCatalog, StoredDocument
from repro.engine import CompiledQuery, Engine, Result, execute_query, xml
from repro.errors import (
    QueryCancelled,
    QueryTimeout,
    ServiceError,
    ServiceOverloaded,
)
from repro.options import ExecutionOptions
from repro.runtime.cancellation import CancellationToken
from repro.xdm.build import parse_document

__version__ = "1.7.0"

__all__ = [
    # the unified public API
    "compile",
    "execute",
    "explain",
    "configure",
    "xml",
    "catalog",
    "ExecutionOptions",
    "DocumentCatalog",
    "StoredDocument",
    # engine objects
    "Engine",
    "CompiledQuery",
    "Result",
    "parse_document",
    # concurrency & cancellation
    "CancellationToken",
    "QueryCancelled",
    "QueryTimeout",
    "ServiceError",
    "ServiceOverloaded",
    # legacy one-shot helper (prefer repro.execute)
    "execute_query",
    "__version__",
]
