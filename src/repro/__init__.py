"""repro — a streaming XML/XQuery query processor.

A faithful reproduction of the system architecture presented in
"XML Query Processing" (D. Florescu, ICDE 2004): an XQuery engine with
a normalizing compiler, a rewrite-rule optimizer, and a lazy pull-based
runtime, over from-scratch XML parsing, the XQuery Data Model, a
simplified XML Schema, the TokenStream binary representation, labeled
storage with structural/twig joins, and a streaming XPath automaton.

Quickstart::

    from repro import execute_query

    result = execute_query(
        "for $b in $doc//book where $b/@year < 1980 return $b/title",
        variables={"doc": "<bib><book year='1967'><title>T</title></book></bib>"},
    )
    print(result.serialize())
"""

from repro.engine import CompiledQuery, Engine, Result, execute_query
from repro.xdm.build import parse_document

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "CompiledQuery",
    "Result",
    "execute_query",
    "parse_document",
    "__version__",
]
