"""The document catalog: one place to bind documents to queries.

Before 1.2 a document reached the engine four different ways (XML text
as the context item, ``repro.xml(...)`` wrappers, raw nodes, hand-built
stores).  The catalog unifies them::

    cat = repro.catalog()
    books = cat.add("books", xml_text)            # tree store + indexes
    engine = repro.Engine(catalog=cat)
    engine.compile("$books//book[price = '55']").execute()

``add`` ingests a source into one of the three storage modes
(:mod:`repro.storage`), collects per-document statistics, and (by
default) builds the element/value indexes the access-path planner
(:mod:`repro.compiler.planner`) uses to replace tree navigation with
posting-list scans and point lookups.  The returned
:class:`StoredDocument` handle is accepted anywhere ``repro.xml(...)``
is: ``variables=``, ``documents=``, and the context item.

Catalog documents are bound automatically when executing queries
compiled by a catalog-carrying engine: ``$books`` above needs no
explicit ``variables={"books": ...}``.

**Disk mode (1.6).**  ``repro.catalog(path=...)`` opens or creates a
*persistent* catalog: every ``add`` also commits the document — token
array, labels, posting lists, statistics — to a segment file under
``path`` (:mod:`repro.storage.persist`), and a fresh process reopening
the same path sees every document without re-parsing any XML.
Reopened documents are :class:`PersistedDocument` handles: statistics
decode from disk for the planner immediately, trees and indexes
materialize lazily (mmap-backed) on first bind.  ``add`` accepts
``durability="sync"`` (fsync'd commit, the default) or ``"none"``
(atomic rename only).  Ingest generations come from the manifest's
durable counter, so compile-cache and server result-cache fingerprints
stay collision-free across restarts.
"""

from __future__ import annotations

import itertools
import threading
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.storage.indexes import ElementIndex, ValueIndex
from repro.storage.stats import DocumentStats
from repro.storage.stores import BaseStore, TextStore, TokenStore, TreeStore
from repro.xdm.nodes import DocumentNode, Node

_STORE_KINDS = {"tree": TreeStore, "tokens": TokenStore, "text": TextStore}

#: process-wide monotonic ingest generation (in-memory catalogs).  Each
#: ``DocumentCatalog.add`` stamps the handle with the next value, so two
#: bindings of the same name are never fingerprint-equal — unlike
#: ``id(store)``, generations are not reused after garbage collection
#: and do change when the *same* store object is re-registered (its
#: contents may have mutated).  Disk catalogs draw from the manifest's
#: durable counter instead, so generations stay unique across processes.
_GENERATION = itertools.count(1)


class StoredDocument:
    """A named, stored (and optionally indexed) document.

    Indexed documents pin one materialized tree so that posting lists
    and the bound document share node identity; unindexed documents
    keep their store's native access semantics (a text store re-parses
    per execution).
    """

    __slots__ = ("name", "store", "indexed", "generation", "_doc",
                 "_element_index", "_value_index")

    def __init__(self, name: str, store: BaseStore, indexed: bool):
        self.name = name
        self.store = store
        self.indexed = indexed
        self.generation = next(_GENERATION)
        self._doc: Optional[DocumentNode] = None
        self._element_index: Optional[ElementIndex] = None
        self._value_index: Optional[ValueIndex] = None
        if indexed:
            self._doc = store.document()

    def document(self) -> DocumentNode:
        """The document node this handle binds."""
        if self._doc is not None:
            return self._doc
        return self.store.document()

    @property
    def stats(self) -> DocumentStats:
        return self.store.stats()

    @property
    def element_index(self) -> Optional[ElementIndex]:
        """Element-name posting lists (None when not indexed)."""
        if not self.indexed:
            return None
        if self._element_index is None:
            if isinstance(self.store, TreeStore) and self.store.document() is self._doc:
                self._element_index = self.store.element_index
            else:
                self._element_index = ElementIndex(self._doc)
        return self._element_index

    @property
    def value_index(self) -> Optional[ValueIndex]:
        """(name, value) point-lookup index (None when not indexed)."""
        if not self.indexed:
            return None
        if self._value_index is None:
            if isinstance(self.store, TreeStore) and self.store.document() is self._doc:
                self._value_index = self.store.value_index
            else:
                self._value_index = ValueIndex(self._doc)
        return self._value_index

    def fingerprint(self) -> tuple:
        """Identity of this binding for the compile cache: a plan built
        against these indexes and statistics must not be reused across
        re-ingests.  The ingest generation (not ``id(store)``) makes the
        fingerprint collision-free: object ids are recycled after GC and
        stay equal when the same store object is re-added with mutated
        contents."""
        return (self.name, self.store.kind, self.indexed, self.generation)

    def __repr__(self) -> str:
        flags = "indexed" if self.indexed else "unindexed"
        return f"StoredDocument({self.name!r}, {self.store.kind}, {flags})"


class PersistedDocument(StoredDocument):
    """A document loaded from a disk catalog, materialized lazily.

    Until something binds it, only the manifest entry is in memory;
    :attr:`stats` decodes the segment's statistics section without
    touching the tree (the planner runs pre-bind), and the first
    :meth:`document` / index access rebuilds the tree from the token
    section and rebinds the persisted labels and posting lists onto it
    — never re-parsing XML.  The pinned tree registers in the owning
    catalog's node map so compiled access paths resolve it at runtime,
    exactly like a freshly ingested document.
    """

    __slots__ = ("_catalog", "_entry", "_lock")

    def __init__(self, name: str, entry, catalog: "DocumentCatalog"):
        from repro.storage.persist import DiskStore

        self.name = name
        self.store = DiskStore(catalog._storage, entry)
        self.indexed = entry.indexed
        self.generation = entry.generation
        self._doc = None
        self._element_index = None
        self._value_index = None
        self._catalog = catalog
        self._entry = entry
        self._lock = threading.Lock()

    def _materialize(self) -> None:
        if self._doc is not None:
            return
        with self._lock:
            if self._doc is not None:
                return
            from repro.storage.persist import StorageError

            storage = self._catalog._storage
            for attempt in range(3):
                try:
                    with storage.open_segment(self._entry) as reader:
                        if self.indexed:
                            doc, element_index, value_index = \
                                reader.materialize_indexed()
                            self._element_index = element_index
                            self._value_index = value_index
                        else:
                            doc = reader.materialize_tree()
                    break
                except (OSError, StorageError):
                    # the writer re-ingested this name and unlinked our
                    # segment after committing the new manifest: adopt
                    # the fresh entry and retry (readers racing a
                    # concurrent add() land here instead of failing)
                    fresh = storage.reload().get(self.name)
                    if fresh is None or \
                            fresh.generation == self._entry.generation or \
                            attempt == 2:
                        raise
                    self._entry = fresh
                    self.indexed = fresh.indexed
                    self.generation = fresh.generation
                    from repro.storage.persist import DiskStore

                    self.store = DiskStore(storage, fresh)
            if self._entry.kind == "tree":
                # mirror TreeStore: store.document() is the pinned tree
                self.store._doc = doc
            self._doc = doc
            self._catalog._by_node[id(doc)] = self

    def document(self) -> DocumentNode:
        if self.indexed or self._entry.kind == "tree":
            self._materialize()
            return self._doc
        # tokens/text semantics: a fresh tree per access
        return self.store.document()

    @property
    def element_index(self) -> Optional[ElementIndex]:
        if not self.indexed:
            return None
        self._materialize()
        return self._element_index

    @property
    def value_index(self) -> Optional[ValueIndex]:
        if not self.indexed:
            return None
        self._materialize()
        return self._value_index

    @property
    def loaded(self) -> bool:
        """Has the tree materialized yet?  (Stats don't count: they
        decode from the segment without building nodes.)"""
        return self._doc is not None

    def __repr__(self) -> str:
        state = "loaded" if self.loaded else "lazy"
        return (f"PersistedDocument({self.name!r}, {self.store.kind}, "
                f"gen {self.generation}, {state})")


class DocumentCatalog:
    """Named documents behind one binding surface (see module docs).

    ``path=None`` (default) keeps everything in memory — the pre-1.6
    behaviour, unchanged.  A path opens or creates a disk-backed
    collection: existing documents load lazily, ``add``/``remove``
    commit incrementally, and :meth:`refresh` picks up commits made by
    another process (the pre-forked server's children attach this way).
    """

    def __init__(self, path: Optional[str | Path] = None, *,
                 durability: str = "sync") -> None:
        from repro.storage.persist import CatalogStorage, check_durability

        self._durability = check_durability(durability)
        self._docs: dict[str, StoredDocument] = {}
        # id(document node) → handle, for the runtime index-eligibility
        # check in compiled AccessPath operators (only indexed documents
        # pin a tree, so the ids stay valid while the catalog lives)
        self._by_node: dict[int, StoredDocument] = {}
        self._storage: Optional[CatalogStorage] = None
        self.path: Optional[Path] = None
        self._result_epoch = 0
        if path is not None:
            self._storage = CatalogStorage(path)
            self.path = self._storage.path
            for name, entry in self._storage.entries().items():
                self._docs[name] = PersistedDocument(name, entry, self)

    def add(self, name: str, source: Any, *, store: str = "tree",
            index: bool = True,
            durability: Optional[str] = None) -> StoredDocument:
        """Ingest ``source`` under ``name``, replacing any previous entry.

        - ``source``: XML text (str), :func:`repro.xml`, a
          :class:`DocumentNode`, or an existing store;
        - ``store``: ``"tree"`` | ``"tokens"`` | ``"text"`` — ignored
          when ``source`` is already a store;
        - ``index``: build element/value indexes (pins a materialized
          tree; required for index-backed access paths);
        - ``durability``: disk catalogs only — ``"sync"`` (default)
          fsyncs the commit, ``"none"`` writes atomically without
          fsync.  In-memory catalogs validate and ignore it.
        """
        if not isinstance(name, str) or not name:
            raise TypeError("catalog document name must be a non-empty str")
        if durability is not None:
            from repro.storage.persist import check_durability

            check_durability(durability)
        from repro.engine import xml as xml_wrapper

        if isinstance(source, BaseStore):
            backing = source
        elif isinstance(source, DocumentNode):
            if store != "tree":
                raise ValueError(
                    f"a DocumentNode can only back a tree store, not {store!r}")
            backing = TreeStore.from_document(source)
        else:
            if isinstance(source, xml_wrapper):
                source = source.text
            if not isinstance(source, str):
                raise TypeError(
                    "catalog source must be XML text, repro.xml(...), a "
                    f"DocumentNode, or a store — got {type(source).__name__}")
            try:
                store_cls = _STORE_KINDS[store]
            except KeyError:
                raise ValueError(
                    f"unknown store kind {store!r}; expected one of "
                    f"{sorted(_STORE_KINDS)}") from None
            backing = store_cls(xml_text=source)
        previous = self._docs.get(name)
        if previous is not None:
            # re-ingest under an existing name: any cached statistics on
            # the incoming store may describe stale contents (a TextStore
            # whose .text was mutated re-parses on document(), so its
            # cached stats would silently diverge from what queries see)
            backing.invalidate_stats()
        stored = StoredDocument(name, backing, bool(index))
        if self._storage is not None:
            entry = self._persist(stored,
                                  durability or self._durability)
            stored.generation = entry.generation
        if previous is not None and previous._doc is not None:
            self._by_node.pop(id(previous._doc), None)
        self._docs[name] = stored
        if stored._doc is not None:
            self._by_node[id(stored._doc)] = stored
        return stored

    def _persist(self, stored: StoredDocument, durability: str):
        """Commit a freshly ingested document to the collection
        directory.  The hot in-memory handle keeps serving this
        process; the segment serves every later open and attach."""
        from repro.tokens.binary import write_binary
        from repro.tokens.build import tokens_from_node

        store = stored.store
        doc = stored._doc
        if isinstance(store, TokenStore):
            tokens_blob = store.blob  # already the RTS1 wire format
        else:
            if doc is None:
                doc = store.document()
            tokens_blob = write_binary(tokens_from_node(doc), pooled=True)
        base_uri = getattr(store, "base_uri", "")
        if not base_uri and doc is not None:
            base_uri = doc.base_uri
        return self._storage.persist_document(
            stored.name, kind=store.kind, indexed=stored.indexed,
            tokens_blob=tokens_blob, stats=stored.stats,
            doc=stored._doc, element_index=stored.element_index,
            value_index=stored.value_index, base_uri=base_uri,
            durability=durability)

    def remove(self, name: str, *,
               durability: Optional[str] = None) -> bool:
        """Drop ``name`` from the catalog (and, in disk mode, commit
        the removal).  Returns False when the name was absent."""
        stored = self._docs.pop(name, None)
        if stored is not None and stored._doc is not None:
            self._by_node.pop(id(stored._doc), None)
        if self._storage is not None:
            removed = self._storage.remove_document(
                name, durability or self._durability)
            return stored is not None or removed
        return stored is not None

    def refresh(self) -> list[str]:
        """Disk mode: re-read the manifest and swap in documents another
        process committed.  Returns the names that changed (added,
        replaced, or removed).  In-memory catalogs return ``[]``.

        Unchanged generations keep their handles (and any materialized
        trees); changed ones become lazy :class:`PersistedDocument`
        handles again.
        """
        if self._storage is None:
            return []
        entries = self._storage.reload()
        changed: list[str] = []
        for name, entry in entries.items():
            current = self._docs.get(name)
            if current is not None and current.generation == entry.generation:
                continue
            if current is not None and current._doc is not None:
                self._by_node.pop(id(current._doc), None)
            self._docs[name] = PersistedDocument(name, entry, self)
            changed.append(name)
        for name in [n for n in self._docs if n not in entries]:
            stale = self._docs.pop(name)
            if stale._doc is not None:
                self._by_node.pop(id(stale._doc), None)
            changed.append(name)
        return sorted(changed)

    # -- scatter-gather shard ownership -------------------------------------

    def shard_map(self, shards: int, *, persist: bool = True) -> dict[str, int]:
        """Deterministic size-balanced document → shard assignment.

        A persisted assignment (disk catalogs store it in the manifest)
        is reused verbatim while it still covers exactly this document
        set at this shard count — shard ownership surviving restarts is
        what keeps a document landing on the worker that already has
        its segment materialized.  Otherwise the assignment is
        recomputed by longest-processing-time bin packing: documents
        sorted by descending weight (segment bytes on disk, total node
        count in memory; name breaks ties) each go to the least-loaded
        shard.  Deterministic by construction — every process computes
        the identical map from the identical manifest.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        names = self.names()
        if self._storage is not None:
            stored = self._storage.shard_map()
            if stored is not None and stored["shards"] == shards \
                    and set(stored["assignment"]) == set(names) \
                    and all(0 <= sid < shards
                            for sid in stored["assignment"].values()):
                return stored["assignment"]
        weighted = []
        for name in names:
            doc = self._docs[name]
            entry = getattr(doc, "_entry", None)
            weight = entry.size if entry is not None \
                else doc.stats.total_nodes
            weighted.append((-weight, name))
        loads = [0] * shards
        assignment: dict[str, int] = {}
        for neg_weight, name in sorted(weighted):
            sid = min(range(shards), key=lambda s: (loads[s], s))
            assignment[name] = sid
            loads[sid] += -neg_weight
        if persist and self._storage is not None:
            self._storage.store_shard_map(shards, assignment,
                                          self._durability)
        return assignment

    # -- the server result cache's durable epoch ---------------------------

    @property
    def result_epoch(self) -> int:
        """The collection's result-cache invalidation epoch.  Disk
        catalogs persist it in the manifest, so a restarted server can
        never serve results cached against a previous process's
        contents (see :mod:`repro.server.cache`)."""
        if self._storage is not None:
            return self._storage.result_epoch
        return self._result_epoch

    def bump_result_epoch(self) -> int:
        if self._storage is not None:
            return self._storage.bump_result_epoch(self._durability)
        self._result_epoch += 1
        return self._result_epoch

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Optional[StoredDocument]:
        return self._docs.get(name)

    def __getitem__(self, name: str) -> StoredDocument:
        return self._docs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._docs

    def __iter__(self) -> Iterator[StoredDocument]:
        return iter(self._docs.values())

    def __len__(self) -> int:
        return len(self._docs)

    def names(self) -> list[str]:
        return sorted(self._docs)

    def stored_for(self, node: Node) -> Optional[StoredDocument]:
        """The indexed handle whose pinned tree is ``node``, if any."""
        return self._by_node.get(id(node))

    def fingerprint(self) -> tuple:
        """Hashable identity of every binding, for the compile cache."""
        return tuple(self._docs[name].fingerprint()
                     for name in sorted(self._docs))

    def __repr__(self) -> str:
        where = f", path={str(self.path)!r}" if self.path else ""
        return f"DocumentCatalog({self.names()!r}{where})"
