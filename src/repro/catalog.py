"""The document catalog: one place to bind documents to queries.

Before 1.2 a document reached the engine four different ways (XML text
as the context item, ``repro.xml(...)`` wrappers, raw nodes, hand-built
stores).  The catalog unifies them::

    cat = repro.catalog()
    books = cat.add("books", xml_text)            # tree store + indexes
    engine = repro.Engine(catalog=cat)
    engine.compile("$books//book[price = '55']").execute()

``add`` ingests a source into one of the three storage modes
(:mod:`repro.storage`), collects per-document statistics, and (by
default) builds the element/value indexes the access-path planner
(:mod:`repro.compiler.planner`) uses to replace tree navigation with
posting-list scans and point lookups.  The returned
:class:`StoredDocument` handle is accepted anywhere ``repro.xml(...)``
is: ``variables=``, ``documents=``, and the context item.

Catalog documents are bound automatically when executing queries
compiled by a catalog-carrying engine: ``$books`` above needs no
explicit ``variables={"books": ...}``.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

from repro.storage.indexes import ElementIndex, ValueIndex
from repro.storage.stats import DocumentStats
from repro.storage.stores import BaseStore, TextStore, TokenStore, TreeStore
from repro.xdm.nodes import DocumentNode, Node

_STORE_KINDS = {"tree": TreeStore, "tokens": TokenStore, "text": TextStore}

#: process-wide monotonic ingest generation.  Each ``DocumentCatalog.add``
#: stamps the handle with the next value, so two bindings of the same
#: name are never fingerprint-equal — unlike ``id(store)``, generations
#: are not reused after garbage collection and do change when the *same*
#: store object is re-registered (its contents may have mutated).
_GENERATION = itertools.count(1)


class StoredDocument:
    """A named, stored (and optionally indexed) document.

    Indexed documents pin one materialized tree so that posting lists
    and the bound document share node identity; unindexed documents
    keep their store's native access semantics (a text store re-parses
    per execution).
    """

    __slots__ = ("name", "store", "indexed", "generation", "_doc",
                 "_element_index", "_value_index")

    def __init__(self, name: str, store: BaseStore, indexed: bool):
        self.name = name
        self.store = store
        self.indexed = indexed
        self.generation = next(_GENERATION)
        self._doc: Optional[DocumentNode] = None
        self._element_index: Optional[ElementIndex] = None
        self._value_index: Optional[ValueIndex] = None
        if indexed:
            self._doc = store.document()

    def document(self) -> DocumentNode:
        """The document node this handle binds."""
        if self._doc is not None:
            return self._doc
        return self.store.document()

    @property
    def stats(self) -> DocumentStats:
        return self.store.stats()

    @property
    def element_index(self) -> Optional[ElementIndex]:
        """Element-name posting lists (None when not indexed)."""
        if not self.indexed:
            return None
        if self._element_index is None:
            if isinstance(self.store, TreeStore) and self.store.document() is self._doc:
                self._element_index = self.store.element_index
            else:
                self._element_index = ElementIndex(self._doc)
        return self._element_index

    @property
    def value_index(self) -> Optional[ValueIndex]:
        """(name, value) point-lookup index (None when not indexed)."""
        if not self.indexed:
            return None
        if self._value_index is None:
            if isinstance(self.store, TreeStore) and self.store.document() is self._doc:
                self._value_index = self.store.value_index
            else:
                self._value_index = ValueIndex(self._doc)
        return self._value_index

    def fingerprint(self) -> tuple:
        """Identity of this binding for the compile cache: a plan built
        against these indexes and statistics must not be reused across
        re-ingests.  The ingest generation (not ``id(store)``) makes the
        fingerprint collision-free: object ids are recycled after GC and
        stay equal when the same store object is re-added with mutated
        contents."""
        return (self.name, self.store.kind, self.indexed, self.generation)

    def __repr__(self) -> str:
        flags = "indexed" if self.indexed else "unindexed"
        return f"StoredDocument({self.name!r}, {self.store.kind}, {flags})"


class DocumentCatalog:
    """Named documents behind one binding surface (see module docs)."""

    def __init__(self) -> None:
        self._docs: dict[str, StoredDocument] = {}
        # id(document node) → handle, for the runtime index-eligibility
        # check in compiled AccessPath operators (only indexed documents
        # pin a tree, so the ids stay valid while the catalog lives)
        self._by_node: dict[int, StoredDocument] = {}

    def add(self, name: str, source: Any, *, store: str = "tree",
            index: bool = True) -> StoredDocument:
        """Ingest ``source`` under ``name``, replacing any previous entry.

        - ``source``: XML text (str), :func:`repro.xml`, a
          :class:`DocumentNode`, or an existing store;
        - ``store``: ``"tree"`` | ``"tokens"`` | ``"text"`` — ignored
          when ``source`` is already a store;
        - ``index``: build element/value indexes (pins a materialized
          tree; required for index-backed access paths).
        """
        if not isinstance(name, str) or not name:
            raise TypeError("catalog document name must be a non-empty str")
        from repro.engine import xml as xml_wrapper

        if isinstance(source, BaseStore):
            backing = source
        elif isinstance(source, DocumentNode):
            if store != "tree":
                raise ValueError(
                    f"a DocumentNode can only back a tree store, not {store!r}")
            backing = TreeStore.from_document(source)
        else:
            if isinstance(source, xml_wrapper):
                source = source.text
            if not isinstance(source, str):
                raise TypeError(
                    "catalog source must be XML text, repro.xml(...), a "
                    f"DocumentNode, or a store — got {type(source).__name__}")
            try:
                store_cls = _STORE_KINDS[store]
            except KeyError:
                raise ValueError(
                    f"unknown store kind {store!r}; expected one of "
                    f"{sorted(_STORE_KINDS)}") from None
            backing = store_cls(xml_text=source)
        stored = StoredDocument(name, backing, bool(index))
        previous = self._docs.get(name)
        if previous is not None:
            if previous._doc is not None:
                self._by_node.pop(id(previous._doc), None)
            # re-ingest under an existing name: any cached statistics on
            # the incoming store may describe stale contents (a TextStore
            # whose .text was mutated re-parses on document(), so its
            # cached stats would silently diverge from what queries see)
            backing.invalidate_stats()
        self._docs[name] = stored
        if stored._doc is not None:
            self._by_node[id(stored._doc)] = stored
        return stored

    def get(self, name: str) -> Optional[StoredDocument]:
        return self._docs.get(name)

    def __getitem__(self, name: str) -> StoredDocument:
        return self._docs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._docs

    def __iter__(self) -> Iterator[StoredDocument]:
        return iter(self._docs.values())

    def __len__(self) -> int:
        return len(self._docs)

    def names(self) -> list[str]:
        return sorted(self._docs)

    def stored_for(self, node: Node) -> Optional[StoredDocument]:
        """The indexed handle whose pinned tree is ``node``, if any."""
        return self._by_node.get(id(node))

    def fingerprint(self) -> tuple:
        """Hashable identity of every binding, for the compile cache."""
        return tuple(self._docs[name].fingerprint()
                     for name in sorted(self._docs))

    def __repr__(self) -> str:
        return f"DocumentCatalog({self.names()!r})"
