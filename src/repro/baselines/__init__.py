"""Comparator baselines.

:class:`TreeTransformer` stands in for "the best XSLT implementation"
of the tutorial's claim ("orders of magnitude better performance than
the best XSLT implementation; even in worst case comparable"): a
template-driven, fully materializing tree-rewriting engine with no
lazy evaluation and no streaming — every intermediate result is a
freshly copied tree.
"""

from repro.baselines.tree_transformer import Template, TreeTransformer

__all__ = ["TreeTransformer", "Template"]
