"""A materializing, template-driven tree transformer (the XSLT stand-in).

Processing model (deliberately faithful to a naive XSLT processor):

- the whole input is parsed into a tree up front;
- templates match elements by local name (or ``*``);
- a template's body function returns *new* nodes; children are
  processed by recursive ``apply`` calls;
- every value passed between templates is a fully materialized copy —
  no laziness, no streaming, no shared buffers.

The contrast with the engine is architectural, not constant-factor:
the engine starts emitting output while this baseline is still copying
input.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.runtime.constructors import copy_node
from repro.xdm.build import parse_document
from repro.xdm.nodes import DocumentNode, ElementNode, Node, TextNode

#: A template body: (element, transformer) → list of replacement nodes.
TemplateBody = Callable[[ElementNode, "TreeTransformer"], list[Node]]


class Template:
    """One rewrite rule: match by element local name."""

    __slots__ = ("pattern", "body", "priority")

    def __init__(self, pattern: str, body: TemplateBody, priority: int = 0):
        self.pattern = pattern  # local name or "*"
        self.body = body
        self.priority = priority

    def matches(self, element: ElementNode) -> bool:
        return self.pattern == "*" or element.name.local == self.pattern


class TreeTransformer:
    """Applies templates top-down, materializing everything."""

    def __init__(self, templates: Iterable[Template]):
        self.templates = sorted(templates, key=lambda t: -t.priority)

    def transform_text(self, xml_text: str) -> list[Node]:
        """Parse (fully) then transform (fully)."""
        doc = parse_document(xml_text)
        return self.transform(doc)

    def transform(self, node: Node) -> list[Node]:
        if isinstance(node, DocumentNode):
            out: list[Node] = []
            for child in node.children:
                out.extend(self.transform(child))
            return out
        if isinstance(node, ElementNode):
            template = self._find(node)
            if template is not None:
                return [copy_node(n) for n in template.body(node, self)]
            # default rule: recurse into children, keep structure
            clone = ElementNode(node.name, None)
            for attr in node.attributes:
                clone.attributes.append(copy_node(attr, clone))
            for child in node.children:
                for produced in self.transform(child):
                    produced.parent = clone
                    clone.children.append(produced)
            return [clone]
        # text/comments/PIs copy through
        return [copy_node(node)]

    def apply(self, nodes: Iterable[Node]) -> list[Node]:
        """apply-templates: transform a node list, concatenating output."""
        out: list[Node] = []
        for node in nodes:
            out.extend(self.transform(node))
        return out

    def _find(self, element: ElementNode) -> Optional[Template]:
        for template in self.templates:
            if template.matches(element):
                return template
        return None


def element(name: str, attrs: dict[str, str] | None = None,
            children: Iterable[Node] | None = None,
            text: str | None = None) -> ElementNode:
    """Helper for template bodies: build an element literally."""
    from repro.qname import QName
    from repro.xdm.nodes import AttributeNode

    node = ElementNode(QName("", name), None)
    for key, value in (attrs or {}).items():
        node.attributes.append(AttributeNode(QName("", key), value, node))
    if text is not None:
        node.children.append(TextNode(text, node))
    for child in children or ():
        child.parent = node
        node.children.append(child)
    return node
