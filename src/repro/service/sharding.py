"""Sharded scatter-gather execution of persisted collections.

The source paper's engine pushes evaluation down to the storage token
stream; PR 9 made that storage durable (one segment per document,
read-only attach in pre-forked children).  This module exploits it for
multi-core scaling: a *collection-level router* partitions a catalog's
documents across the :class:`~repro.service.workers.ForkWorkerPool`
children, dispatches one compiled query per owning shard, and merges
the per-shard results back into a single reply that is byte-identical
to single-process execution.

The division of labour:

- :func:`repro.compiler.analysis.collection_shard_plan` decides
  *eligibility*: per-document-independent FLWOR/path shapes over the
  default collection shard as ``"scan"``; ``count``/``sum``/``exists``
  roots get a partial-aggregate + combine path; everything else falls
  back to single-worker execution (counted ``fallback_single``);
- :meth:`DocumentCatalog.shard_map` owns *placement*: a deterministic
  size-balanced assignment persisted in the manifest, so a document
  keeps landing on the worker that already has its segment warm;
- the child side (``AppCore.execute_shard``) evaluates the query once
  per owned document — the default collection bound to just that
  document — and returns per-document item transports;
- :class:`ShardRouter` (parent side) scatters, then merges in global
  sorted-name document order.

Merge invariants (what makes the output byte-identical):

- cross-document order: the default collection binds documents in
  sorted-name order and pins their tree ids in that order
  (:func:`repro.xdm.order.pin_tree_order`), so concatenating per-
  document results in sorted-name order *is* document order;
- first error in document order wins: the merge walks documents in
  global order and surfaces the first error entry it meets — exactly
  the error left-to-right single-process evaluation would raise;
- ``exists`` short-circuits like its lazy single-process counterpart:
  a ``true`` partial from an earlier document wins over a later
  document's error (single-process evaluation would never have
  reached that document);
- ``sum`` partials fold left-to-right in document order through the
  engine's own :func:`~repro.runtime.arithmetic.arithmetic`, so type
  promotion (integer → decimal → float → double) matches the global
  fold.

Atomic values never cross the pipe as pickles — the engine compares
``AtomicValue.type`` by identity (``is``), which a pickle round-trip
breaks.  Items travel as plain tuples (:func:`transport_items`) and
atomics are rebuilt against this process's type singletons
(:func:`rebuild_atomic`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from decimal import Decimal
from typing import Any, Optional

from repro.errors import QueryTimeout, XQueryError
from repro.runtime.arithmetic import arithmetic
from repro.service.workers import ForkWorkerPool, WorkerCrashed
from repro.xdm.items import AtomicValue, boolean, integer
from repro.xdm.nodes import Node
from repro.xsd import types as T


class UncombinableShardResult(Exception):
    """Per-shard partials the merge cannot fold (unexpected shape or
    type) — the router falls back to single-worker execution."""


# -- the item transport -----------------------------------------------------
#
# Per item: ("n", markup)                           node, serialized
#           ("a", json_value, lexical, type_local)  atomic; json_value is
#               the plain Python value when it is JSON-representable
#               (bool/int/float/str), else None (use the lexical form)
#           ("s", text)                             non-XDM stragglers


def transport_items(result) -> list[tuple]:
    """Encode a drained result sequence for the pipe."""
    out: list[tuple] = []
    for item in result:
        if isinstance(item, Node):
            out.append(("n", _serialize_node(item)))
        elif isinstance(item, AtomicValue):
            value = item.value
            if not isinstance(value, (bool, int, float, str)):
                value = None
            out.append(("a", value, item.lexical, item.type.name.local))
        else:
            out.append(("s", str(item)))
    return out


def _serialize_node(node: Node) -> str:
    from repro.xdm.build import node_events
    from repro.xmlio.serializer import serialize_events

    return serialize_events(node_events(node))


def rebuild_atomic(entry: tuple) -> AtomicValue:
    """Rebuild a typed atomic from its transport tuple.

    Only the types an aggregate partial can carry (the numeric tower
    and boolean) are rebuilt — anything else is
    :class:`UncombinableShardResult`, which the router turns into a
    single-worker fallback rather than a wrong answer.
    """
    if not (isinstance(entry, tuple) and entry and entry[0] == "a"):
        raise UncombinableShardResult(f"expected an atomic, got {entry!r}")
    _, json_value, lexical, local = entry
    try:
        type_ = T.xs_type(local)
    except KeyError:
        raise UncombinableShardResult(f"unknown type {local!r}") from None
    if type_ is T.XS_BOOLEAN:
        return boolean(json_value if isinstance(json_value, bool)
                       else lexical == "true")
    if type_.derives_from(T.XS_INTEGER):
        return AtomicValue(int(lexical), type_)
    if type_.derives_from(T.XS_DECIMAL):
        return AtomicValue(Decimal(lexical), type_)
    if type_ in (T.XS_FLOAT, T.XS_DOUBLE) or \
            type_.derives_from(T.XS_FLOAT) or type_.derives_from(T.XS_DOUBLE):
        if isinstance(json_value, (int, float)) \
                and not isinstance(json_value, bool):
            return AtomicValue(float(json_value), type_)
        return AtomicValue(float(lexical.replace("INF", "inf")), type_)
    raise UncombinableShardResult(f"cannot combine partials of type {local}")


def _json_item(entry: tuple) -> Any:
    """One transport entry → its ``form=json`` payload item (the exact
    shape ``result_payload`` produces)."""
    kind = entry[0]
    if kind == "n":
        return {"node": entry[1]}
    if kind == "a":
        return entry[1] if entry[1] is not None else entry[2]
    return entry[1]


def _merge_stats(total: dict, part: dict) -> None:
    for key, value in (part or {}).items():
        if isinstance(value, (int, float)):
            total[key] = total.get(key, 0) + value
        else:
            total[key] = value


class ShardRouter:
    """Parent-side scatter-gather for eligible collection queries.

    ``try_execute`` returns a reply dict shaped exactly like
    ``AppCore.execute_inline``'s (plus a ``"shard"`` stats block), or
    ``None`` — *None always means "run the normal single-worker
    path"*, never an error.  Scattering is read-only (children attach
    to committed segments), so falling back mid-flight is always safe.
    """

    def __init__(self, core, pool: ForkWorkerPool,
                 options=None) -> None:
        self.core = core
        self.pool = pool
        self.options = options if options is not None else core.options
        # enough threads that two concurrent scatters don't fully
        # serialize; per-worker pipes still bound actual parallelism
        self._threads = ThreadPoolExecutor(
            max_workers=max(4, pool.workers * 2),
            thread_name_prefix="repro-scatter")
        self._lock = threading.Lock()
        self._counters = {
            "scattered": 0,            # queries executed via scatter
            "fallback_single": 0,      # collection queries not eligible
            "merged_errors": 0,        # scatters resolved to an error
            "worker_crash_fallbacks": 0,
            "uncombinable_fallbacks": 0,
        }
        self._merge_ms_total = 0.0

    # -- configuration ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return (self.pool is not None and self.pool.workers >= 2
                and self.options.shards != 0)

    def shard_count(self) -> int:
        configured = self.options.shards
        if not configured:  # None → auto: one shard per pool worker
            return self.pool.workers
        return configured

    # -- the scatter path ---------------------------------------------------

    def try_execute(self, tenant_name: str, query_text: str,
                    variables: Optional[dict] = None,
                    declared: Optional[tuple] = None,
                    form: str = "json",
                    timeout: Optional[float] = None,
                    hard_timeout: Optional[float] = None) -> Optional[dict]:
        started = time.perf_counter()
        if not self.enabled or form not in ("json", "xml"):
            return None
        tenant = self.core.tenants.peek(tenant_name)
        if tenant is None:
            return None
        if declared is None:
            declared = tuple(variables or ())
        try:
            compiled = tenant.engine.compile(query_text,
                                             variables=tuple(declared))
        except Exception:  # noqa: BLE001 - surface via the normal path
            return None
        if compiled.catalog_collection is None:
            # not a default-collection query: nothing to scatter and
            # nothing to count — this is the common case
            return None
        from repro.compiler.analysis import collection_shard_plan

        doc_names = [name for name, _ in compiled.catalog_collection]
        kind = collection_shard_plan(compiled.optimized)
        shards = min(self.shard_count(), len(doc_names))
        if kind is None or len(doc_names) < 2 or shards < 2:
            with self._lock:
                self._counters["fallback_single"] += 1
            return None
        assignment = tenant.catalog.shard_map(shards)
        shard_docs: dict[int, list[str]] = {}
        for name in doc_names:
            shard_docs.setdefault(assignment.get(name, 0), []).append(name)

        results: dict[int, Any] = {}
        failures: list[BaseException] = []
        try:
            with self.pool.admission():
                futures = {}
                for sid, names in sorted(shard_docs.items()):
                    command = ("execute_shard", tenant_name, query_text,
                               variables, tuple(declared), tuple(names),
                               timeout)
                    futures[sid] = self._threads.submit(
                        self.pool.call, command, hard_timeout,
                        sid % self.pool.workers, True)
                # always drain every future: an early exception must not
                # leave targeted calls in flight past the admission slot
                for sid, future in futures.items():
                    try:
                        results[sid] = future.result()
                    except BaseException as exc:  # noqa: BLE001
                        failures.append(exc)
        except XQueryError:
            # admission itself rejected (ServiceOverloaded): the normal
            # path would reject identically — let it say so
            return None
        for exc in failures:
            if isinstance(exc, QueryTimeout):
                from repro.server.tenants import status_for

                with self._lock:
                    self._counters["scattered"] += 1
                    self._counters["merged_errors"] += 1
                return {"status": status_for(exc), "error": exc.code,
                        "message": exc.message or str(exc),
                        "elapsed_ms": _ms_since(started)}
        if failures:
            with self._lock:
                self._counters["worker_crash_fallbacks"] += \
                    sum(1 for e in failures if isinstance(e, WorkerCrashed))
            return None

        merge_started = time.perf_counter()
        merged = self._merge(kind, doc_names, shard_docs, results, form)
        merge_ms = _ms_since(merge_started)
        with self._lock:
            self._merge_ms_total += merge_ms
        if merged is None:
            with self._lock:
                self._counters["uncombinable_fallbacks"] += 1
            return None
        payload_or_error, rows_per_shard = merged
        shard_info = {
            "shard.chosen": kind,
            "shard.shards_hit": len(shard_docs),
            "shard.rows_per_shard": {str(sid): rows
                                     for sid, rows
                                     in sorted(rows_per_shard.items())},
            "shard.merge_ms": merge_ms,
        }
        if "status" in payload_or_error:  # a merged per-document error
            with self._lock:
                self._counters["scattered"] += 1
                self._counters["merged_errors"] += 1
            payload_or_error["elapsed_ms"] = _ms_since(started)
            payload_or_error["shard"] = shard_info
            return payload_or_error
        from repro.server.cache import cacheable

        with self._lock:
            self._counters["scattered"] += 1
        return {"status": 200, "payload": payload_or_error,
                "cached": False, "cacheable": cacheable(compiled),
                "elapsed_ms": _ms_since(started), "shard": shard_info}

    # -- the merge operator -------------------------------------------------

    def _merge(self, kind: str, doc_names: list[str],
               shard_docs: dict[int, list[str]], results: dict[int, Any],
               form: str):
        """Combine per-shard replies in global document order.

        Returns ``(payload_dict, rows_per_shard)``, ``(error_reply,
        rows_per_shard)``, or ``None`` for "cannot combine, fall back".
        """
        owner = {name: sid for sid, names in shard_docs.items()
                 for name in names}
        per_doc: dict[str, tuple] = {}
        for sid, reply in results.items():
            if not isinstance(reply, dict) or reply.get("status") != 200:
                return None
            for entry in reply.get("docs", ()):
                per_doc[entry[0]] = tuple(entry)
        rows_per_shard: dict[int, int] = {sid: 0 for sid in shard_docs}

        def error_reply(entry: tuple):
            return ({"status": entry[2], "error": entry[3],
                     "message": entry[4]}, rows_per_shard)

        try:
            if kind == "exists":
                # lazy like fn:exists: the first true partial wins —
                # single-process evaluation would never have reached a
                # later document, so a later error must not surface
                for name in doc_names:
                    entry = per_doc.get(name)
                    if entry is None:
                        return None
                    if entry[1] == "error":
                        return error_reply(entry)
                    rows_per_shard[owner[name]] += len(entry[2])
                    partial = self._one_atomic(entry)
                    if not isinstance(partial.value, bool):
                        raise UncombinableShardResult("non-boolean exists")
                    if partial.value:
                        return (self._aggregate_payload(
                            boolean(True), per_doc, form), rows_per_shard)
                return (self._aggregate_payload(boolean(False), per_doc,
                                                form), rows_per_shard)

            # every other kind drains the whole collection: the first
            # error in document order wins, completeness is required
            ordered: list[tuple] = []
            for name in doc_names:
                entry = per_doc.get(name)
                if entry is None:
                    return None
                if entry[1] == "error":
                    return error_reply(entry)
                rows_per_shard[owner[name]] += len(entry[2])
                ordered.append(entry)

            if kind == "scan":
                return (self._scan_payload(ordered, form), rows_per_shard)
            if kind == "count":
                total = 0
                for entry in ordered:
                    partial = self._one_atomic(entry)
                    if not isinstance(partial.value, int) \
                            or isinstance(partial.value, bool):
                        raise UncombinableShardResult("non-integer count")
                    total += partial.value
                return (self._aggregate_payload(integer(total), per_doc,
                                                form), rows_per_shard)
            if kind == "sum":
                total: Optional[AtomicValue] = None
                for entry in ordered:
                    partial = self._one_atomic(entry)
                    total = partial if total is None \
                        else arithmetic("+", total, partial)
                return (self._aggregate_payload(total, per_doc, form),
                        rows_per_shard)
        except UncombinableShardResult:
            return None
        except XQueryError:
            # the combine arithmetic itself failed (e.g. mixed duration
            # promotion): fall back and let one worker raise it properly
            return None
        return None

    @staticmethod
    def _one_atomic(entry: tuple) -> AtomicValue:
        items = entry[2]
        if len(items) != 1:
            raise UncombinableShardResult(
                f"aggregate partial with {len(items)} items")
        return rebuild_atomic(items[0])

    @staticmethod
    def _scan_payload(ordered: list[tuple], form: str) -> dict:
        stats: dict = {}
        for entry in ordered:
            _merge_stats(stats, entry[3] if len(entry) > 3 else {})
        if form == "xml":
            parts: list[str] = []
            prev_atomic = False
            for entry in ordered:
                for item in entry[2]:
                    if item[0] == "n":
                        parts.append(item[1])
                        prev_atomic = False
                    else:
                        # the adjacent-atomic space rule applies across
                        # document boundaries too, exactly like
                        # Result.serialize over the whole sequence
                        if prev_atomic:
                            parts.append(" ")
                        parts.append(item[2] if item[0] == "a" else item[1])
                        prev_atomic = True
            return {"form": "xml", "body": "".join(parts), "stats": stats}
        items = [_json_item(item) for entry in ordered for item in entry[2]]
        return {"form": "json", "items": items, "count": len(items),
                "stats": stats}

    @staticmethod
    def _aggregate_payload(total: AtomicValue, per_doc: dict,
                           form: str) -> dict:
        stats: dict = {}
        for entry in per_doc.values():
            if entry[1] == "ok":
                _merge_stats(stats, entry[3] if len(entry) > 3 else {})
        if form == "xml":
            return {"form": "xml", "body": total.lexical, "stats": stats}
        value = total.value
        if not isinstance(value, (bool, int, float, str)):
            value = total.lexical
        return {"form": "json", "items": [value], "count": 1,
                "stats": stats}

    # -- introspection / shutdown ------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            out = dict(self._counters)
            out["merge_ms_total"] = round(self._merge_ms_total, 3)
        out["enabled"] = self.enabled
        out["shards"] = self.shard_count() if self.enabled else 0
        return out

    def shutdown(self) -> None:
        self._threads.shutdown(wait=False)


def _ms_since(started: float) -> float:
    return round((time.perf_counter() - started) * 1000, 3)
