"""Concurrent query execution: pools, parallel groups, admission control.

- :class:`QueryService` — run queries on a bounded pool with deadlines,
  retry, and load shedding;
- :mod:`repro.service.executors` — the group executors behind the
  compiler's ``ParallelSeq`` operator (threads for overlap, fork for
  multi-core speedup).
"""

from repro.service.executors import (
    ForkGroupExecutor,
    SequentialExecutor,
    ThreadGroupExecutor,
    default_executor,
)
from repro.service.queryservice import QueryService, RetryingDocumentLoader

__all__ = [
    "QueryService",
    "RetryingDocumentLoader",
    "SequentialExecutor",
    "ThreadGroupExecutor",
    "ForkGroupExecutor",
    "default_executor",
]
