"""Concurrent query execution: pools, parallel groups, admission control.

- :class:`QueryService` — run queries on a bounded pool with deadlines,
  retry, and load shedding;
- :class:`ForkWorkerPool` — persistent pre-forked workers with warm
  per-process state, crash respawn, and a replay log (the server's
  multi-process mode);
- :class:`ShardRouter` — collection-level scatter-gather across the
  pool children (eligible queries run one shard per worker and merge
  in document order);
- :mod:`repro.service.executors` — the group executors behind the
  compiler's ``ParallelSeq`` operator (threads for overlap, fork for
  multi-core speedup).
"""

from repro.service.executors import (
    ForkGroupExecutor,
    SequentialExecutor,
    ThreadGroupExecutor,
    default_executor,
)
from repro.service.queryservice import QueryService, RetryingDocumentLoader
from repro.service.sharding import ShardRouter, UncombinableShardResult
from repro.service.workers import ForkWorkerPool, WorkerCrashed

__all__ = [
    "QueryService",
    "RetryingDocumentLoader",
    "SequentialExecutor",
    "ThreadGroupExecutor",
    "ForkGroupExecutor",
    "ForkWorkerPool",
    "WorkerCrashed",
    "ShardRouter",
    "UncombinableShardResult",
    "default_executor",
]
