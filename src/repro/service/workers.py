"""A persistent pre-forked worker pool: multi-core serving that
survives across requests.

:class:`~repro.service.executors.ForkGroupExecutor` forks per *group*:
every parallel plan pays a fork, and nothing learned by a child (warm
compile caches, parsed documents) outlives one query.
:class:`ForkWorkerPool` graduates that design for a long-lived server:
``workers`` children are forked **once**, each runs a framed
request/reply loop over a pipe pair, and each keeps its own warm state
(per-tenant engines, compile caches, pinned index trees) across
requests — so the fork cost and the compile cost are paid once per
process, not once per request.

The pool is deliberately generic: it transports pickled command tuples
to a ``handler`` callable that runs *in the child*.  State lives in the
handler's closure — forked children copy it copy-on-write, and a
respawned child rebuilds it by replaying the pool's replay log (the
commands recorded by ``broadcast(..., replay=True)``, e.g. document
ingests), so a crashed worker comes back with the same tenant state
its siblings have.

Failure semantics:

- a child that dies mid-request surfaces :class:`WorkerCrashed` to the
  caller (the server re-runs that request inline) and is respawned;
- a child that overruns ``hard_timeout`` (the cooperative deadline is
  the first line of defense — this is the backstop for a worker stuck
  in non-cooperative code) is SIGKILLed, respawned, and the caller
  gets :class:`~repro.errors.QueryTimeout`;
- admission control mirrors :class:`~repro.service.QueryService`: at
  most ``workers`` requests run while ``max_queue`` wait, one more
  raises :class:`~repro.errors.ServiceOverloaded`.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import select
import signal
import struct
import threading
from typing import Any, Callable, Optional

from repro.errors import QueryTimeout, ServiceError, ServiceOverloaded

_FORK_AVAILABLE = hasattr(os, "fork")

#: frame header: little-endian u64 payload length
_HEADER = struct.Struct("<Q")


class WorkerCrashed(ServiceError):
    """A pool worker died before replying (it has been respawned)."""

    code = "SVC0004"


def _write_frame(fd: int, obj: Any) -> None:
    payload = pickle.dumps(obj)
    data = _HEADER.pack(len(payload)) + payload
    offset = 0
    while offset < len(data):
        offset += os.write(fd, data[offset:offset + (1 << 20)])


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    parts: list[bytes] = []
    remaining = n
    while remaining:
        chunk = os.read(fd, min(remaining, 1 << 20))
        if not chunk:
            return None  # EOF: peer died
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def _read_frame(fd: int) -> Optional[Any]:
    header = _read_exact(fd, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    payload = _read_exact(fd, length)
    if payload is None:
        return None
    return pickle.loads(payload)


class _Worker:
    """Parent-side handle: pid plus the two pipe ends the parent keeps.

    ``replayed`` counts how many replay-log commands this child has
    already applied — commands it replayed at spawn count immediately,
    and every replay broadcast delivered to it advances the counter.
    This is what makes the SIGKILL-respawn-during-broadcast sequence
    exactly-once: a child respawned *after* a command entered the log
    replays it at spawn, and the blocked broadcast then sees
    ``replayed`` past its log index and skips the duplicate delivery.
    """

    __slots__ = ("wid", "pid", "send_fd", "recv_fd", "replayed")

    def __init__(self, wid: int, pid: int, send_fd: int, recv_fd: int,
                 replayed: int = 0):
        self.wid = wid
        self.pid = pid
        self.send_fd = send_fd
        self.recv_fd = recv_fd
        self.replayed = replayed


class ForkWorkerPool:
    """``workers`` persistent forked children running ``handler``.

    - ``handler(command) -> reply`` runs in the child; both sides must
      pickle.  Exceptions escaping the handler come back to the caller
      as :class:`WorkerCrashed` — handlers should catch domain errors
      and encode them in the reply;
    - ``call(command)`` dispatches to a free worker, blocking while all
      are busy; admission is bounded by ``max_queue``.
      ``call(command, worker=wid)`` targets a *specific* worker — the
      scatter-gather router pins each shard to its owning child so
      shard-local warm state (materialized segments, per-document
      compile products) stays hot across requests;
    - ``broadcast(command, replay=True)`` sends to *every* worker (state
      mutation: ingests, registrations) and records the command so
      respawned workers replay it.  Broadcasts are serialized against
      each other and delivered worker-by-worker, tracking each child's
      replay-log position so a worker respawned mid-broadcast (the
      hard-timeout SIGKILL backstop) applies every logged command
      exactly once.
    """

    def __init__(self, handler: Callable[[Any], Any],
                 workers: Optional[int] = None, max_queue: int = 8):
        self.handler = handler
        self.workers = max(1, workers if workers is not None
                           else (os.cpu_count() or 2))
        self.max_queue = max_queue
        self._workers: dict[int, _Worker] = {}
        self._lock = threading.Lock()
        # worker ids not currently executing a command; guarded by
        # `_avail` (which wraps `_lock`, so counters stay coherent)
        self._free: set[int] = set()
        self._avail = threading.Condition(self._lock)
        # broadcasts serialize against each other so every child sees
        # replay-logged commands in log order
        self._bcast_lock = threading.Lock()
        self._replay_log: list[Any] = []
        self._in_flight = 0
        self._started = False
        self._closed = False
        self._counters = {"requests": 0, "broadcasts": 0, "rejected": 0,
                          "crashes": 0, "respawns": 0, "hard_kills": 0,
                          "replay_skips": 0}

    @property
    def available(self) -> bool:
        return _FORK_AVAILABLE

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ForkWorkerPool":
        if not _FORK_AVAILABLE:
            raise RuntimeError("ForkWorkerPool requires os.fork()")
        if self._started:
            return self
        self._started = True
        for wid in range(self.workers):
            self._spawn(wid)
            with self._avail:
                self._free.add(wid)
                self._avail.notify_all()
        return self

    def _spawn(self, wid: int) -> None:
        send_r, send_w = os.pipe()   # parent → child commands
        recv_r, recv_w = os.pipe()   # child → parent replies
        # snapshot before forking: the child must close every pipe end
        # belonging to its siblings, or a dead sibling's pipes never
        # read EOF in the parent (the classic prefork fd leak)
        sibling_fds = [fd for worker in self._workers.values()
                       for fd in (worker.send_fd, worker.recv_fd)]
        replay = list(self._replay_log)
        pid = os.fork()
        if pid == 0:  # child
            try:
                os.close(send_w)
                os.close(recv_r)
                for fd in sibling_fds:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                signal.signal(signal.SIGINT, signal.SIG_IGN)
                self._child_loop(send_r, recv_w, replay)
            finally:
                os._exit(0)
        os.close(send_r)
        os.close(recv_w)
        # note: the caller owns marking `wid` free — a worker id stands
        # for a *slot*, in the free set exactly when no request holds
        # it.  The fresh child applied the full snapshot at startup, so
        # its replay position is the snapshot length.
        self._workers[wid] = _Worker(wid, pid, send_w, recv_r,
                                     replayed=len(replay))

    def _child_loop(self, recv_fd: int, send_fd: int, replay: list) -> None:
        handler = self.handler
        for command in replay:
            try:
                handler(command)
            except Exception:
                pass  # replayed state mutations best-effort: the
                # original broadcast already reported the error
        while True:
            command = _read_frame(recv_fd)
            if command is None or command == ("__shutdown__",):
                return
            try:
                reply = handler(command)
            except BaseException as exc:  # noqa: BLE001 - crosses a pipe
                reply = ("__handler_error__", f"{type(exc).__name__}: {exc}")
            _write_frame(send_fd, reply)

    # -- dispatch ----------------------------------------------------------

    def _acquire(self, worker: Optional[int] = None) -> int:
        """Take a worker slot: any free one, or a specific ``worker``."""
        with self._avail:
            if worker is None:
                while not self._free:
                    self._avail.wait()
                wid = min(self._free)
            else:
                wid = worker
                if wid not in self._workers:
                    raise ValueError(f"no such worker: {wid}")
                while wid not in self._free:
                    self._avail.wait()
            self._free.discard(wid)
            return wid

    def _release(self, wid: int) -> None:
        with self._avail:
            self._free.add(wid)
            self._avail.notify_all()

    @contextlib.contextmanager
    def admission(self):
        """Reserve one admission slot for a multi-call operation.

        The scatter-gather router fans one logical request out into one
        targeted :meth:`call` per shard; wrapping the scatter in
        ``admission()`` and passing ``admitted=True`` to the calls
        charges the request a single slot — the same admission cost as
        the single-worker execution it replaces.
        """
        if self._closed:
            raise RuntimeError("ForkWorkerPool is shut down")
        with self._lock:
            if self._in_flight >= self.workers + self.max_queue:
                self._counters["rejected"] += 1
                raise ServiceOverloaded(
                    queue_depth=self._in_flight - self.workers,
                    max_queue=self.max_queue, max_workers=self.workers)
            self._in_flight += 1
            self._counters["requests"] += 1
        try:
            yield
        finally:
            with self._lock:
                self._in_flight -= 1

    def call(self, command: Any, hard_timeout: Optional[float] = None,
             worker: Optional[int] = None, admitted: bool = False) -> Any:
        """Send ``command`` to a worker and return its reply.

        ``hard_timeout`` (seconds) is the non-cooperative backstop: a
        worker that hasn't replied by then is killed and respawned, and
        the call raises :class:`~repro.errors.QueryTimeout`.

        ``worker`` targets a specific worker id (blocking until that
        worker is free); the default picks any free worker.
        ``admitted=True`` skips admission accounting — only for calls
        already covered by an enclosing :meth:`admission` slot.
        """
        if self._closed:
            raise RuntimeError("ForkWorkerPool is shut down")
        slot = contextlib.nullcontext() if admitted else self.admission()
        with slot:
            wid = self._acquire(worker)
            try:
                handle = self._workers[wid]
                try:
                    _write_frame(handle.send_fd, command)
                    if hard_timeout is not None:
                        ready, _, _ = select.select([handle.recv_fd], [], [],
                                                    hard_timeout)
                        if not ready:
                            self._kill(handle)
                            self._respawn(wid)
                            with self._lock:
                                self._counters["hard_kills"] += 1
                            raise QueryTimeout(deadline=hard_timeout,
                                               elapsed=hard_timeout)
                    reply = _read_frame(handle.recv_fd)
                except OSError:
                    reply = None
                if reply is None:
                    with self._lock:
                        self._counters["crashes"] += 1
                    self._respawn(wid)
                    raise WorkerCrashed(f"worker {wid} died mid-request")
                if isinstance(reply, tuple) and reply \
                        and reply[0] == "__handler_error__":
                    raise WorkerCrashed(f"worker {wid} handler failed: "
                                        f"{reply[1]}")
                return reply
            finally:
                # the slot goes back in every path — after a respawn,
                # `wid` names the fresh replacement worker
                self._release(wid)

    def broadcast(self, command: Any, replay: bool = False) -> list:
        """Send ``command`` to every worker; returns their replies.

        ``replay=True`` records the command for respawned workers —
        use it for every state mutation that must survive a crash.
        Delivery is per-worker: the broadcast takes one worker at a
        time, so it never blocks behind *all* in-flight requests at
        once, and a worker respawned mid-broadcast (hard-timeout kill
        in a concurrent :meth:`call`) is detected by its replay-log
        position — the fresh child already applied the logged command
        at startup, so delivering it again would double-apply the
        mutation.  ``_bcast_lock`` keeps concurrent broadcasts in log
        order on every child.
        """
        if self._closed:
            raise RuntimeError("ForkWorkerPool is shut down")
        with self._bcast_lock:
            with self._lock:
                self._counters["broadcasts"] += 1
            idx = None
            if replay:
                idx = len(self._replay_log)
                self._replay_log.append(command)
            replies = []
            for wid in sorted(self._workers):
                self._acquire(wid)
                try:
                    worker = self._workers[wid]
                    if idx is not None and worker.replayed > idx:
                        with self._lock:
                            self._counters["replay_skips"] += 1
                        replies.append(("__replayed__",))
                        continue
                    try:
                        _write_frame(worker.send_fd, command)
                        reply = _read_frame(worker.recv_fd)
                    except OSError:
                        reply = None
                    if reply is None:
                        with self._lock:
                            self._counters["crashes"] += 1
                        self._respawn(wid)  # replays the log, incl. this
                        reply = ("__respawned__",)
                    elif idx is not None:
                        worker.replayed = idx + 1
                    replies.append(reply)
                finally:
                    self._release(wid)
        return replies

    # -- worker failure ----------------------------------------------------

    def _kill(self, worker: _Worker) -> None:
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except OSError:
            pass

    def _respawn(self, wid: int) -> None:
        worker = self._workers.pop(wid, None)
        if worker is not None:
            for fd in (worker.send_fd, worker.recv_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass
            try:
                os.waitpid(worker.pid, 0)
            except ChildProcessError:
                pass
        with self._lock:
            self._counters["respawns"] += 1
        self._spawn(wid)

    # -- introspection / shutdown -----------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            out = dict(self._counters)
            out["workers"] = len(self._workers)
            out["in_flight"] = self._in_flight
            out["queue_depth"] = max(0, self._in_flight - self.workers)
            out["replay_log"] = len(self._replay_log)
        return out

    def shutdown(self) -> None:
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                _write_frame(worker.send_fd, ("__shutdown__",))
            except OSError:
                pass
        for worker in self._workers.values():
            for fd in (worker.send_fd, worker.recv_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass
            try:
                os.waitpid(worker.pid, 0)
            except ChildProcessError:
                pass
        self._workers.clear()

    def __enter__(self) -> "ForkWorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
