"""The concurrent query service: a bounded pool with admission control.

:class:`QueryService` turns the engine into something a server can
embed: queries run on a bounded worker pool, each request gets a
deadline enforced by a cooperative
:class:`~repro.runtime.cancellation.CancellationToken`, transient
document-loader failures retry with exponential backoff, and admission
control sheds load *before* it queues unboundedly::

    opts = repro.ExecutionOptions(max_workers=4, max_queue=8, jobs=4)
    with QueryService(options=opts) as svc:
        future = svc.submit("count($d//item)", variables={"d": repro.xml(text)},
                            timeout=2.0)
        result = future.result()          # a repro.engine.Result, drained

Semantics:

- **admission control** — at most ``max_workers`` queries run and
  ``max_queue`` wait; one more raises
  :class:`repro.errors.ServiceOverloaded` carrying the observed queue
  depth, so clients can shed or back off;
- **deadlines** — ``timeout=`` (or ``default_timeout``) attaches a
  token checked inside the hot iterator loops; a runaway query raises
  :class:`repro.errors.QueryTimeout` carrying the partial stats, and
  its worker is freed (cooperative: within one loop iteration);
- **retry** — a ``document_loader`` wrapped by the service retries
  transient failures (OSError family) with exponential backoff,
  counting ``service.loader_retries`` into the result stats;
- **graceful degradation** — the service's engine compiles
  ``ParallelSeq`` plans against a group executor; when the pool is
  saturated the executor declines groups and members evaluate inline,
  sequentially (``parallel.fallback_sequential`` in the stats) — load
  makes queries sequential, never wrong.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Optional

from repro.engine import Engine, Result
from repro.errors import QueryCancelled, ServiceOverloaded
from repro.options import UNSET, ExecutionOptions
from repro.runtime.cancellation import CancellationToken

#: exception families the retrying loader treats as transient
_TRANSIENT = (OSError, TimeoutError)

#: longest single sleep inside a retry backoff: a ``cancel()`` from
#: another thread is observed within this slice, not after the full
#: (up to ``max_delay``) backoff
_BACKOFF_SLICE = 0.02


class RetryingDocumentLoader:
    """Wraps a ``loader(uri)`` with exponential-backoff retries.

    Only the OSError family (filesystem hiccups, network loaders built
    on sockets) is retried; query errors pass straight through.  Sleeps
    never overrun the request's cancellation token: the remaining
    deadline caps every backoff, and the token is checked between
    attempts.
    """

    def __init__(self, loader, retries: int = 2, base_delay: float = 0.05,
                 max_delay: float = 1.0, token: Optional[CancellationToken] = None,
                 stats: Optional[dict] = None):
        self._loader = loader
        self.retries = retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.token = token
        #: live stats dict to count retries into (the service points
        #: this at the executing query's counters)
        self.stats = stats if stats is not None else {}

    def __call__(self, uri: str):
        attempt = 0
        while True:
            if self.token is not None:
                self.token.check()
            try:
                return self._loader(uri)
            except _TRANSIENT:
                if attempt >= self.retries:
                    raise
                delay = min(self.base_delay * (2 ** attempt), self.max_delay)
                if self.token is None:
                    time.sleep(delay)
                else:
                    remaining = self.token.remaining()
                    if remaining is not None:
                        delay = min(delay, remaining)
                    # sleep in short slices, re-checking the token after
                    # each: a cancel() (or deadline) landing mid-backoff
                    # must interrupt the sleep, not be discovered only
                    # after the full backoff has elapsed
                    end = time.monotonic() + delay
                    while True:
                        self.token.check()
                        left = end - time.monotonic()
                        if left <= 0:
                            break
                        time.sleep(min(left, _BACKOFF_SLICE))
                    self.token.check()
                attempt += 1
                self.stats["service.loader_retries"] = \
                    self.stats.get("service.loader_retries", 0) + 1


class QueryService:
    """Run queries concurrently with deadlines and admission control.

    Configuration is one frozen :class:`repro.ExecutionOptions`::

        QueryService(options=ExecutionOptions(max_workers=8, jobs=2))

    where the two pool-sizing knobs are deliberately distinct (they
    overlapped confusingly pre-1.5):

    - ``options.max_workers`` / ``options.max_queue`` — the admission
      bound *across* queries: at most ``max_workers`` queries execute
      while ``max_queue`` wait;
    - ``options.jobs`` — parallelism *within* one query: the group
      executor workers that independent subexpression groups fan out
      to (``None`` = platform default, the historical behaviour of a
      service built without explicit options);
    - ``options.default_timeout`` — deadline (seconds) for requests
      that don't pass their own;
    - ``options.retries`` / ``options.retry_base_delay`` — the
      transient-failure policy applied to every request's
      ``document_loader``.

    ``engine`` overrides the service-built engine (e.g. one carrying a
    catalog); the pre-1.5 keyword arguments (``max_workers=``,
    ``jobs=``, …) still work behind a ``DeprecationWarning``.
    """

    def __init__(self, engine: Optional[Engine] = None,
                 options: Optional[ExecutionOptions] = None,
                 max_workers=UNSET, max_queue=UNSET,
                 jobs=UNSET,
                 default_timeout=UNSET,
                 retries=UNSET, retry_base_delay=UNSET,
                 batch_size=UNSET, codegen=UNSET):
        if options is not None and not isinstance(options, ExecutionOptions):
            raise TypeError(
                f"options must be a repro.ExecutionOptions, got "
                f"{type(options).__name__} (the pre-1.5 positional "
                f"max_workers= must now be passed by keyword)")
        # the historical default: a service without explicit options
        # parallelizes within queries at the platform's width
        options = ExecutionOptions.from_legacy(
            "QueryService", options, ExecutionOptions(jobs=None),
            max_workers=max_workers, max_queue=max_queue, jobs=jobs,
            default_timeout=default_timeout, retries=retries,
            retry_base_delay=retry_base_delay, batch_size=batch_size,
            codegen=codegen)
        #: the frozen :class:`repro.ExecutionOptions` this service runs
        #: under; the attributes below are read-only mirrors
        self.options = options
        if engine is None:
            # batch_size > 0 compiles block-at-a-time plans; deadline
            # tokens are then polled once per block, so a timed-out
            # request is interrupted within one chunk of work.
            # codegen="source" compiles to specialized Python instead
            # (polls once per bound item) and excludes batch_size > 0.
            # The engine resolves options.jobs to a group executor.
            engine = Engine(options=options)
        self.engine = engine
        self.max_workers = options.max_workers
        self.max_queue = options.max_queue
        self.default_timeout = options.default_timeout
        self.retries = options.retries
        self.retry_base_delay = options.retry_base_delay
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers,
                                        thread_name_prefix="repro-svc")
        self._lock = threading.Lock()
        self._in_flight = 0
        self._counters = {"submitted": 0, "rejected": 0, "completed": 0,
                          "failed": 0, "timeouts": 0, "cancelled": 0}
        self._closed = False

    # -- submission --------------------------------------------------------

    def submit(self, query_text: str, *,
               context_item: Any = None,
               variables: Optional[dict[str, Any]] = None,
               documents: Optional[dict[str, Any]] = None,
               collections: Optional[dict[str, list]] = None,
               document_loader=None,
               profiler=None,
               timeout: Optional[float] = None,
               cancellation: Optional[CancellationToken] = None,
               engine: Optional[Engine] = None) -> Future:
        """Admit a query; returns a Future resolving to a drained
        :class:`~repro.engine.Result`.

        Raises :class:`~repro.errors.ServiceOverloaded` immediately
        when ``max_workers`` queries are running and ``max_queue`` are
        already waiting.  The Future raises what the query raised —
        :class:`~repro.errors.QueryTimeout` (with partial stats) on a
        blown deadline, :class:`~repro.errors.QueryCancelled` when the
        caller cancelled the token.

        ``engine`` compiles this one request on a different engine than
        the service default — the multi-tenant server passes each
        tenant's catalog-wired engine here while one service enforces
        the admission bound across all tenants.
        """
        if self._closed:
            raise RuntimeError("QueryService is shut down")
        with self._lock:
            if self._in_flight >= self.max_workers + self.max_queue:
                self._counters["rejected"] += 1
                raise ServiceOverloaded(
                    queue_depth=max(0, self._in_flight - self.max_workers),
                    max_queue=self.max_queue, max_workers=self.max_workers)
            self._in_flight += 1
            self._counters["submitted"] += 1

        token = cancellation if cancellation is not None \
            else CancellationToken()
        deadline = timeout if timeout is not None else self.default_timeout
        if deadline is not None:
            token.tighten(deadline)

        try:
            return self._pool.submit(
                self._run, engine or self.engine, query_text, context_item,
                variables, documents, collections, document_loader, profiler,
                token)
        except BaseException:
            with self._lock:
                self._in_flight -= 1
            raise

    def execute(self, query_text: str, **kwargs) -> Result:
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(query_text, **kwargs).result()

    # -- the worker --------------------------------------------------------

    def _run(self, engine, query_text, context_item, variables, documents,
             collections, document_loader, profiler,
             token: CancellationToken) -> Result:
        try:
            loader = document_loader
            if loader is not None:
                loader = RetryingDocumentLoader(
                    loader, retries=self.retries,
                    base_delay=self.retry_base_delay, token=token)
            compiled = engine.compile(
                query_text, variables=tuple(variables or ()))
            result = compiled.execute(
                context_item=context_item, variables=variables,
                documents=documents, collections=collections,
                document_loader=loader, profiler=profiler,
                cancellation=token)
            if loader is not None:
                # count retries into the live stats of *this* result
                loader.stats = result.stats
            # drain in the worker: the deadline governs evaluation, and
            # the returned Result is fully buffered (re-iterable, free)
            result.items()
            with self._lock:
                self._counters["completed"] += 1
            return result
        except QueryCancelled as exc:
            with self._lock:
                key = "timeouts" if exc.reason == "deadline" else "cancelled"
                self._counters[key] += 1
            raise
        except BaseException:
            with self._lock:
                self._counters["failed"] += 1
            raise
        finally:
            with self._lock:
                self._in_flight -= 1

    # -- introspection / lifecycle ----------------------------------------

    def stats(self) -> dict[str, int]:
        """Service counters plus the instantaneous load."""
        with self._lock:
            out = dict(self._counters)
            out["in_flight"] = self._in_flight
            out["queue_depth"] = max(0, self._in_flight - self.max_workers)
        return out

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)
        executor = getattr(self.engine, "executor", None)
        if executor is not None:
            executor.shutdown()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
