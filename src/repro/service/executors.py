"""Group executors: the runtime half of parallel-group execution.

The compiler half (``repro.compiler.parallel``) proves which sibling
subexpressions are independent; the code generator then emits a
``ParallelSeq`` operator that hands the member subplans to one of the
executors here.  The contract is one duck-typed method::

    run_group(plans, dctx) -> list[list[item] | None] | None

- returning ``None`` declines the whole group (saturated pool, nested
  fan-out, platform without fork): the caller evaluates every member
  inline, sequentially, and counts ``parallel.fallback_sequential``;
- a ``None`` *entry* declines one member (result not transportable
  across a process boundary): the caller evaluates just that member
  inline — results are always exact, parallelism is only a fast path.

Two families, because CPython's GIL splits the problem:

- :class:`ThreadGroupExecutor` — a bounded thread pool.  Threads share
  the heap, so any member result (including nodes) comes back intact,
  and blocking members (``fn:doc`` through a slow document loader)
  overlap.  Pure-Python CPU work does *not* speed up under the GIL.
- :class:`ForkGroupExecutor` — ``os.fork()`` fan-out.  Children
  inherit the parsed document tree copy-on-write (no serialization of
  inputs at all) and evaluate members on separate cores; results come
  back over a pipe, which restricts transport to atomic values — the
  shape aggregation queries produce.  This is the executor that turns
  the paper's dataflow-parallelism slide into wall-clock speedup.

Deadlock freedom (thread pool): a group is admitted only when *every*
member can occupy a worker immediately (permit accounting), and a
worker thread never fans out again (thread-local reentrancy guard) —
so no task ever waits in the queue behind a blocked parent.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator, Optional

Plan = Callable[..., Iterator[Any]]
GroupResult = Optional[list[Optional[list[Any]]]]

_FORK_AVAILABLE = hasattr(os, "fork")


class SequentialExecutor:
    """The null executor: declines every group.

    Configure it to exercise the sequential-fallback path explicitly
    (tests, benchmark baselines) while keeping the ``ParallelSeq``
    operators — and their stats — in the plan.
    """

    def run_group(self, plans: list[Plan], dctx) -> GroupResult:
        return None

    def shutdown(self) -> None:
        pass


class ThreadGroupExecutor:
    """Fan group members out to a bounded thread pool.

    ``max_workers`` bounds concurrent members across *all* groups; a
    group is only admitted when all its members get a worker at once
    (see module docstring for why that is deadlock-free).
    """

    def __init__(self, max_workers: int = 4):
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="repro-group")
        self._lock = threading.Lock()
        self._free = max_workers
        self._local = threading.local()

    def run_group(self, plans: list[Plan], dctx) -> GroupResult:
        if getattr(self._local, "in_worker", False):
            return None  # nested fan-out inside a member: run inline
        with self._lock:
            if self._free < len(plans):
                return None  # saturated: caller degrades to sequential
            self._free -= len(plans)
        futures = [self._pool.submit(self._run_member, plan, dctx)
                   for plan in plans]
        results: list[Optional[list[Any]]] = []
        error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                # keep draining: members are pure, and permits must be
                # returned by every _run_member before we leave
                if error is None:
                    error = exc  # earliest member, as sequential order would
                results.append(None)
        if error is not None:
            raise error
        return results

    def _run_member(self, plan: Plan, dctx) -> list[Any]:
        self._local.in_worker = True
        try:
            return list(plan(dctx))
        finally:
            self._local.in_worker = False
            with self._lock:
                self._free += 1

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadGroupExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class ForkGroupExecutor:
    """Fan group members out to forked child processes.

    Children are forked per group (so they see the documents already
    parsed by the parent, copy-on-write) and stream their member's
    result back over a pipe.  Only atomic values survive the pipe —
    a member producing nodes, an unpicklable value, or any exception
    reports a marker instead, and the parent re-evaluates that member
    inline (pure members are deterministic, so the rerun is faithful,
    and an erroring rerun raises with the real traceback).

    Deadlines propagate: the forked child inherits the parent's
    :class:`~repro.runtime.cancellation.CancellationToken` snapshot,
    and its absolute monotonic deadline is valid in the child, so a
    runaway member times itself out.  Explicit ``cancel()`` after the
    fork only interrupts the parent (documented limitation).
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 2))
        #: set in forked children so nested groups never fork again
        self._in_child = False

    @property
    def available(self) -> bool:
        return _FORK_AVAILABLE

    def run_group(self, plans: list[Plan], dctx) -> GroupResult:
        if not _FORK_AVAILABLE or self._in_child or len(plans) < 2:
            return None
        token = getattr(dctx._shared, "cancellation", None)
        results: list[Optional[list[Any]]] = [None] * len(plans)
        next_member = 0
        while next_member < len(results):
            if token is not None:
                token.check()
            wave = range(next_member,
                         min(next_member + self.jobs, len(results)))
            children = [(i, *self._fork_member(plans[i], dctx)) for i in wave]
            for i, pid, read_fd in children:
                payload = self._read_all(read_fd)
                os.waitpid(pid, 0)
                results[i] = self._decode(payload)
            next_member = wave.stop
        return results

    # -- child side --------------------------------------------------------

    def _fork_member(self, plan: Plan, dctx) -> tuple[int, int]:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid:  # parent
            os.close(write_fd)
            return pid, read_fd
        # child: evaluate, encode, write, hard-exit (no atexit/buffers)
        os.close(read_fd)
        self._in_child = True
        try:
            payload = _encode_items(list(plan(dctx)))
        except BaseException:  # noqa: BLE001 - parent reruns for the traceback
            payload = pickle.dumps(("raised",))
        try:
            os.write(write_fd, struct.pack("<Q", len(payload)))
            offset = 0
            while offset < len(payload):
                offset += os.write(write_fd, payload[offset:offset + 1 << 20])
        except BaseException:
            os._exit(1)
        finally:
            os._exit(0)
        return 0, 0  # pragma: no cover - unreachable

    # -- parent side -------------------------------------------------------

    @staticmethod
    def _read_all(read_fd: int) -> bytes:
        try:
            header = b""
            while len(header) < 8:
                chunk = os.read(read_fd, 8 - len(header))
                if not chunk:
                    return b""
                header += chunk
            (length,) = struct.unpack("<Q", header)
            parts: list[bytes] = []
            remaining = length
            while remaining:
                chunk = os.read(read_fd, min(remaining, 1 << 20))
                if not chunk:
                    return b""
                parts.append(chunk)
                remaining -= len(chunk)
            return b"".join(parts)
        finally:
            os.close(read_fd)

    @staticmethod
    def _decode(payload: bytes) -> Optional[list[Any]]:
        """Rebuild a member's items, or None to request an inline rerun."""
        if not payload:
            return None  # child died before writing: rerun inline
        try:
            message = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(message, tuple) or not message:
            return None
        if message[0] != "items":
            return None  # ("fallback",) / ("raised",): rerun inline
        from repro.xdm.items import AtomicValue
        from repro.xsd.types import builtin_types

        types = builtin_types()
        items: list[Any] = []
        for value, name_pair in message[1]:
            atype = types.get(_qname(name_pair))
            if atype is None:
                return None  # schema-derived type: rerun inline
            items.append(AtomicValue(value, atype))
        return items

    def shutdown(self) -> None:
        pass

    def __enter__(self) -> "ForkGroupExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _encode_items(items: list[Any]) -> bytes:
    """Pickle a member result for the pipe, or a fallback marker.

    Atomic values travel as ``(python value, (type uri, type local))``
    pairs; nodes (or values pickle rejects) turn the whole member into
    ``("fallback",)`` — parents re-evaluate those inline.
    """
    from repro.xdm.items import AtomicValue

    encoded: list[tuple[Any, tuple[str, str]]] = []
    for item in items:
        if not isinstance(item, AtomicValue):
            return pickle.dumps(("fallback",))
        encoded.append((item.value, (item.type.name.uri, item.type.name.local)))
    try:
        return pickle.dumps(("items", encoded))
    except Exception:
        return pickle.dumps(("fallback",))


def _qname(name_pair: tuple[str, str]):
    from repro.qname import QName

    return QName(name_pair[0], name_pair[1])


def default_executor(jobs: Optional[int] = None):
    """The best executor this platform offers for ``jobs`` workers.

    Fork-capable platforms get :class:`ForkGroupExecutor` (real
    multi-core speedup); elsewhere :class:`ThreadGroupExecutor` keeps
    the same semantics with overlap limited to blocking members.
    ``jobs=0``/``1`` means "don't parallelize": returns None so the
    engine compiles plain sequential plans.
    """
    if jobs is not None and jobs <= 1:
        return None
    if _FORK_AVAILABLE:
        return ForkGroupExecutor(jobs=jobs)
    return ThreadGroupExecutor(max_workers=jobs or 4)
