"""XQuery front end: source text → expression tree.

"Internal XQuery representations: text → abstract syntax tree →
expression tree → annotated expression tree → TokenIterator.  We
preserve the lineage through all those representations!"  Every
expression node carries its source position; the compiler copies it
through rewrites, so errors and EXPLAIN output can always point back
at the query text.
"""

from repro.xquery.ast import Expr, Module, Prolog, FunctionDecl, VariableDecl
from repro.xquery.parser import parse_query
from repro.xquery.unparse import Unparsable, unparse

__all__ = ["parse_query", "unparse", "Unparsable",
           "Expr", "Module", "Prolog", "FunctionDecl", "VariableDecl"]
