"""The expression tree.

"Expressions built during parsing; (almost) 1-1 mapping between
expressions in XQuery and internal ones. ... Redundant algebra: e.g.
general FLWR, but also LET and MAP; typeswitch, but also instanceof and
conditionals."

Every node subclasses :class:`Expr` and declares ``_fields`` — the
attribute names holding child expressions (scalars or lists).  Generic
traversal (:meth:`Expr.children`) and functional rebuilding
(:meth:`Expr.with_children`) are what the rewrite-rule engine runs on,
so adding an expression kind automatically extends the optimizer.

``pos`` is the (line, column) lineage back to the source text.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.qname import QName
from repro.xdm.items import AtomicValue


class SequenceTypeAST:
    """A parsed sequence type: item test + occurrence indicator.

    ``item_kind`` is one of ``"atomic"``, ``"item"``, ``"node"``,
    ``"element"``, ``"attribute"``, ``"document"``, ``"text"``,
    ``"comment"``, ``"processing-instruction"``, ``"empty"``.
    ``occurrence`` is ``""`` (exactly one), ``"?"``, ``"*"`` or ``"+"``.
    """

    __slots__ = ("item_kind", "name", "type_name", "occurrence")

    def __init__(self, item_kind: str, name: QName | None = None,
                 type_name: QName | None = None, occurrence: str = ""):
        self.item_kind = item_kind
        self.name = name
        self.type_name = type_name
        self.occurrence = occurrence

    def __repr__(self) -> str:
        core = self.item_kind
        if self.item_kind == "atomic":
            core = str(self.type_name)
        elif self.name or self.type_name:
            args = ", ".join(str(x) for x in (self.name, self.type_name) if x)
            core = f"{self.item_kind}({args})"
        elif self.item_kind not in ("empty",):
            core = f"{self.item_kind}()"
        return core + self.occurrence

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SequenceTypeAST):
            return NotImplemented
        return (self.item_kind == other.item_kind and self.name == other.name
                and self.type_name == other.type_name
                and self.occurrence == other.occurrence)


class Expr:
    """Base class of all expression-tree nodes."""

    _fields: tuple[str, ...] = ()
    __slots__ = ("pos", "annotations")

    def __init__(self, pos: tuple[int, int] = (0, 0)):
        self.pos = pos
        #: analysis results (doc-order, distinct, uses-vars, ...) are
        #: attached here by repro.compiler.analysis
        self.annotations: dict[str, Any] = {}

    # -- generic traversal -------------------------------------------------

    def children(self) -> Iterator["Expr"]:
        """All direct child expressions, in evaluation order."""
        for field in self._fields:
            value = getattr(self, field)
            if value is None:
                continue
            if isinstance(value, Expr):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Expr):
                        yield item

    def with_children(self, mapper) -> "Expr":
        """Rebuild this node with every child passed through ``mapper``.

        Returns self unchanged (no copy) when no child changed — rewrite
        passes rely on this to detect fixpoints cheaply.
        """
        changed = False
        updates: dict[str, Any] = {}
        for field in self._fields:
            value = getattr(self, field)
            if isinstance(value, Expr):
                new = mapper(value)
                if new is not value:
                    changed = True
                updates[field] = new
            elif isinstance(value, (list, tuple)):
                new_list = []
                for item in value:
                    if isinstance(item, Expr):
                        new_item = mapper(item)
                        if new_item is not item:
                            changed = True
                        new_list.append(new_item)
                    else:
                        new_list.append(item)
                updates[field] = type(value)(new_list) if isinstance(value, tuple) else new_list
            else:
                updates[field] = value
        if not changed:
            return self
        clone = object.__new__(type(self))
        Expr.__init__(clone, self.pos)
        for slot_holder in type(self).__mro__:
            for slot in getattr(slot_holder, "__slots__", ()):
                if slot in ("pos", "annotations"):
                    continue
                setattr(clone, slot, getattr(self, slot))
        for field, value in updates.items():
            setattr(clone, field, value)
        return clone

    def walk(self) -> Iterator["Expr"]:
        """Pre-order walk of the whole subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return f"{type(self).__name__}"


# ---------------------------------------------------------------------------
# Primary expressions
# ---------------------------------------------------------------------------


class Literal(Expr):
    """A constant atomic value."""

    __slots__ = ("value",)
    _fields = ()

    def __init__(self, value: AtomicValue, pos=(0, 0)):
        super().__init__(pos)
        self.value = value

    def __repr__(self) -> str:
        return f"Literal({self.value.value!r})"


class EmptySequence(Expr):
    """The literal ``()``."""

    __slots__ = ()


class VarRef(Expr):
    """``$name``."""

    __slots__ = ("name",)

    def __init__(self, name: QName, pos=(0, 0)):
        super().__init__(pos)
        self.name = name

    def __repr__(self) -> str:
        return f"VarRef(${self.name})"


class ContextItem(Expr):
    """``.`` — the current context item."""

    __slots__ = ()


class FunctionCall(Expr):
    """A (built-in or user) function call; resolved during compilation."""

    __slots__ = ("name", "args")
    _fields = ("args",)

    def __init__(self, name: QName, args: list[Expr], pos=(0, 0)):
        super().__init__(pos)
        self.name = name
        self.args = args

    def __repr__(self) -> str:
        return f"FunctionCall({self.name}/{len(self.args)})"


class SequenceExpr(Expr):
    """Comma: sequence construction with automatic flattening."""

    __slots__ = ("items",)
    _fields = ("items",)

    def __init__(self, items: list[Expr], pos=(0, 0)):
        super().__init__(pos)
        self.items = items


class RangeExpr(Expr):
    """``1 to 10``."""

    __slots__ = ("low", "high")
    _fields = ("low", "high")

    def __init__(self, low: Expr, high: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.low = low
        self.high = high


# ---------------------------------------------------------------------------
# FLWOR and friends
# ---------------------------------------------------------------------------


class ForClause:
    """One ``for $v [at $p] in expr`` binding."""

    __slots__ = ("var", "pos_var", "type_decl", "expr")

    def __init__(self, var: QName, expr: Expr, pos_var: QName | None = None,
                 type_decl: SequenceTypeAST | None = None):
        self.var = var
        self.expr = expr
        self.pos_var = pos_var
        self.type_decl = type_decl


class LetClause:
    """One ``let $v := expr`` binding."""

    __slots__ = ("var", "type_decl", "expr")

    def __init__(self, var: QName, expr: Expr,
                 type_decl: SequenceTypeAST | None = None):
        self.var = var
        self.expr = expr
        self.type_decl = type_decl


class OrderSpec:
    """One ``order by`` key."""

    __slots__ = ("expr", "descending", "empty_least")

    def __init__(self, expr: Expr, descending: bool = False,
                 empty_least: bool = True):
        self.expr = expr
        self.descending = descending
        self.empty_least = empty_least


class FLWOR(Expr):
    """The general FLWOR.

    The normalizer lowers order-by-free, group-by-free FLWORs to nested
    For/Let/If; the rest stay as FLWOR and evaluate by materializing
    binding tuples ("syntactic sugar that combines FOR, LET, IF" +
    ORDER BY).

    ``group`` implements the tutorial's "Missing functionalities: Group
    by" as the extension the research-topics slide cites (Paparizos et
    al., "Grouping in XML"), with XQuery-3.0-style semantics: after
    ``group by $k := expr`` each pre-grouping variable rebinds to the
    *sequence* of its values within the group.
    """

    __slots__ = ("clauses", "where", "group", "order", "stable", "ret")
    _fields = ("where", "ret")  # clause exprs handled specially

    def __init__(self, clauses: list[ForClause | LetClause], where: Expr | None,
                 order: list[OrderSpec], ret: Expr, stable: bool = False, pos=(0, 0),
                 group: "list[tuple[QName, Expr]] | None" = None):
        super().__init__(pos)
        self.clauses = clauses
        self.where = where
        self.group = group or []
        self.order = order
        self.ret = ret
        self.stable = stable

    def children(self) -> Iterator[Expr]:
        for clause in self.clauses:
            yield clause.expr
        if self.where is not None:
            yield self.where
        for _var, key in self.group:
            yield key
        for spec in self.order:
            yield spec.expr
        yield self.ret

    def with_children(self, mapper) -> "FLWOR":
        new_clauses = []
        changed = False
        for clause in self.clauses:
            new_expr = mapper(clause.expr)
            if new_expr is not clause.expr:
                changed = True
                if isinstance(clause, ForClause):
                    clause = ForClause(clause.var, new_expr, clause.pos_var, clause.type_decl)
                else:
                    clause = LetClause(clause.var, new_expr, clause.type_decl)
            new_clauses.append(clause)
        new_where = mapper(self.where) if self.where is not None else None
        if new_where is not self.where:
            changed = True
        new_group = []
        for var, key in self.group:
            new_key = mapper(key)
            if new_key is not key:
                changed = True
            new_group.append((var, new_key))
        new_order = []
        for spec in self.order:
            new_key = mapper(spec.expr)
            if new_key is not spec.expr:
                changed = True
                spec = OrderSpec(new_key, spec.descending, spec.empty_least)
            new_order.append(spec)
        new_ret = mapper(self.ret)
        if new_ret is not self.ret:
            changed = True
        if not changed:
            return self
        return FLWOR(new_clauses, new_where, new_order, new_ret, self.stable,
                     self.pos, new_group)


class ForExpr(Expr):
    """Core single-variable map: ``for $v [at $p] in seq return body``."""

    __slots__ = ("var", "pos_var", "seq", "body")
    _fields = ("seq", "body")

    def __init__(self, var: QName, seq: Expr, body: Expr,
                 pos_var: QName | None = None, pos=(0, 0)):
        super().__init__(pos)
        self.var = var
        self.pos_var = pos_var
        self.seq = seq
        self.body = body

    def __repr__(self) -> str:
        return f"ForExpr(${self.var})"


class LetExpr(Expr):
    """Core single binding: ``let $v := value return body``."""

    __slots__ = ("var", "value", "body")
    _fields = ("value", "body")

    def __init__(self, var: QName, value: Expr, body: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.var = var
        self.value = value
        self.body = body

    def __repr__(self) -> str:
        return f"LetExpr(${self.var})"


class Quantified(Expr):
    """``some/every $v in seq satisfies cond`` (single variable, after
    normalization of multi-variable forms into nesting)."""

    __slots__ = ("kind", "var", "seq", "cond")
    _fields = ("seq", "cond")

    def __init__(self, kind: str, var: QName, seq: Expr, cond: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.kind = kind  # "some" | "every"
        self.var = var
        self.seq = seq
        self.cond = cond


class IfExpr(Expr):
    __slots__ = ("cond", "then", "orelse")
    _fields = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Expr, orelse: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class TypeswitchCase:
    __slots__ = ("var", "seq_type", "body")

    def __init__(self, var: QName | None, seq_type: SequenceTypeAST | None, body: Expr):
        self.var = var
        self.seq_type = seq_type  # None for the default branch
        self.body = body


class Typeswitch(Expr):
    __slots__ = ("operand", "cases", "default")
    _fields = ("operand",)

    def __init__(self, operand: Expr, cases: list[TypeswitchCase],
                 default: TypeswitchCase, pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.cases = cases
        self.default = default

    def children(self) -> Iterator[Expr]:
        yield self.operand
        for case in self.cases:
            yield case.body
        yield self.default.body

    def with_children(self, mapper) -> "Typeswitch":
        new_operand = mapper(self.operand)
        changed = new_operand is not self.operand
        new_cases = []
        for case in self.cases:
            body = mapper(case.body)
            if body is not case.body:
                changed = True
                case = TypeswitchCase(case.var, case.seq_type, body)
            new_cases.append(case)
        default_body = mapper(self.default.body)
        default = self.default
        if default_body is not default.body:
            changed = True
            default = TypeswitchCase(default.var, None, default_body)
        if not changed:
            return self
        return Typeswitch(new_operand, new_cases, default, self.pos)


# ---------------------------------------------------------------------------
# Type operators
# ---------------------------------------------------------------------------


class InstanceOf(Expr):
    __slots__ = ("operand", "seq_type")
    _fields = ("operand",)

    def __init__(self, operand: Expr, seq_type: SequenceTypeAST, pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.seq_type = seq_type


class CastExpr(Expr):
    __slots__ = ("operand", "type_name", "optional")
    _fields = ("operand",)

    def __init__(self, operand: Expr, type_name: QName, optional: bool, pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.type_name = type_name
        self.optional = optional  # trailing "?" on the single type


class CastableExpr(Expr):
    __slots__ = ("operand", "type_name", "optional")
    _fields = ("operand",)

    def __init__(self, operand: Expr, type_name: QName, optional: bool, pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.type_name = type_name
        self.optional = optional


class TreatExpr(Expr):
    __slots__ = ("operand", "seq_type")
    _fields = ("operand",)

    def __init__(self, operand: Expr, seq_type: SequenceTypeAST, pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.seq_type = seq_type


class ParamConvert(Expr):
    """Function-conversion rules applied to an argument or return value.

    Inserted when inlining user functions so that the implicit
    operations (atomization of node arguments to atomic-typed
    parameters, untypedAtomic casting, numeric promotion, then a type
    check) survive inlining — the pitfall the paper's
    "Function inlining ... Not always!" slide warns about.
    """

    __slots__ = ("operand", "seq_type", "role")
    _fields = ("operand",)

    def __init__(self, operand: Expr, seq_type: SequenceTypeAST, role: str = "argument",
                 pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.seq_type = seq_type
        self.role = role


class ValidateExpr(Expr):
    __slots__ = ("operand", "mode")
    _fields = ("operand",)

    def __init__(self, operand: Expr, mode: str = "strict", pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.mode = mode


# ---------------------------------------------------------------------------
# Logic, comparison, arithmetic, set operators
# ---------------------------------------------------------------------------


class AndExpr(Expr):
    __slots__ = ("left", "right")
    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.left = left
        self.right = right


class OrExpr(Expr):
    __slots__ = ("left", "right")
    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.left = left
        self.right = right


class Comparison(Expr):
    """Value (eq/ne/lt/le/gt/ge), general (=,!=,<,<=,>,>=), node
    (is/isnot) or order (<<, >>) comparison."""

    __slots__ = ("op", "family", "left", "right")
    _fields = ("left", "right")

    def __init__(self, op: str, family: str, left: Expr, right: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.op = op            # canonical operator name, e.g. "eq", "=", "is", "<<"
        self.family = family    # "value" | "general" | "node" | "order"
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"Comparison({self.op})"


class Arithmetic(Expr):
    __slots__ = ("op", "left", "right")
    _fields = ("left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.op = op  # "+", "-", "*", "div", "idiv", "mod"
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"Arithmetic({self.op})"


class UnaryExpr(Expr):
    __slots__ = ("op", "operand")
    _fields = ("operand",)

    def __init__(self, op: str, operand: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.op = op  # "-" or "+"
        self.operand = operand


class SetOp(Expr):
    """union / intersect / except — node sequences only, result in
    document order with duplicates removed."""

    __slots__ = ("op", "left", "right")
    _fields = ("left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.op = op  # "union" | "intersect" | "except"
        self.left = left
        self.right = right


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------


class NodeTest:
    """A node test: kind test and/or name test.

    ``kind`` in {"*any*", "element", "attribute", "text", "comment",
    "processing-instruction", "document", "node"}; name of None means
    any name; wildcard URIs/locals are the empty-string sentinel "*".
    """

    __slots__ = ("kind", "name", "type_name", "pi_target")

    def __init__(self, kind: str = "node", name: QName | None = None,
                 type_name: QName | None = None, pi_target: str | None = None):
        self.kind = kind
        self.name = name
        self.type_name = type_name
        self.pi_target = pi_target

    def __repr__(self) -> str:
        if self.name is not None:
            return f"NodeTest({self.kind} {self.name})"
        return f"NodeTest({self.kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeTest):
            return NotImplemented
        return (self.kind == other.kind and self.name == other.name
                and self.type_name == other.type_name
                and self.pi_target == other.pi_target)


class Step(Expr):
    """One axis step evaluated against the context item."""

    __slots__ = ("axis", "test")

    def __init__(self, axis: str, test: NodeTest, pos=(0, 0)):
        super().__init__(pos)
        self.axis = axis
        self.test = test

    def __repr__(self) -> str:
        return f"Step({self.axis}::{self.test})"


class PathExpr(Expr):
    """``e1 / e2`` — the second-order path operator.

    Semantics per the paper: evaluate e1, bind ``.`` to each node,
    evaluate e2, concatenate, then sort+dedup by document order (the
    normalizer materializes that last part as an explicit :class:`DDO`
    so the optimizer can elide it).
    """

    __slots__ = ("left", "right")
    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.left = left
        self.right = right


class Filter(Expr):
    """``base[predicate]`` — positional or boolean filtering."""

    __slots__ = ("base", "predicate")
    _fields = ("base", "predicate")

    def __init__(self, base: Expr, predicate: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.base = base
        self.predicate = predicate


class DDO(Expr):
    """Explicit distinct-doc-order operator.

    Inserted by normalization around path results; elided by the
    optimizer when the input is statically known to be sorted and
    duplicate-free (experiment E5).
    """

    __slots__ = ("operand",)
    _fields = ("operand",)

    def __init__(self, operand: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand


class RootExpr(Expr):
    """Leading ``/`` — the root of the context node's tree."""

    __slots__ = ()


class AccessPath(Expr):
    """An index-backed access path chosen by the planner.

    Replaces an eligible ``DDO(PathExpr(...))`` chain rooted at a
    catalog-bound variable.  ``steps`` is the root-to-output element
    chain as ``(edge, name)`` pairs (edge ``"child"`` | ``"descendant"``);
    ``pred`` optionally names a value-equality predicate on the output
    step: ``(kind, name, probe)`` with kind ``"child"`` | ``"attribute"``
    and ``probe`` the string to probe the value index with (None when
    the literal is non-string — element-scan only).

    ``chosen`` records the planner's decision (``"element_index"`` |
    ``"value_index"``) and ``est_rows`` its selectivity estimate; both
    surface through EXPLAIN.  ``predicate`` keeps the original
    comparison for exact residual re-verification, and ``fallback`` the
    original expression, compiled alongside so evaluation degrades to
    navigation whenever the runtime binding is not the indexed document
    the plan was costed for.
    """

    __slots__ = ("var", "steps", "pred", "chosen", "est_rows",
                 "predicate", "fallback")
    _fields = ("predicate", "fallback")

    def __init__(self, var: QName, steps: tuple, pred, chosen: str,
                 est_rows: int, predicate: Optional[Expr],
                 fallback: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.var = var
        self.steps = steps
        self.pred = pred
        self.chosen = chosen
        self.est_rows = est_rows
        self.predicate = predicate
        self.fallback = fallback

    def __repr__(self) -> str:
        path = "".join(
            ("//" if edge == "descendant" else "/") + name
            for edge, name in self.steps)
        note = ""
        if self.pred is not None:
            kind, name, probe = self.pred
            shown = name if kind != "attribute" else "@" + name
            note = f"[{shown} = {probe!r}]" if probe is not None \
                else f"[{shown} = <non-string>]"
        return f"AccessPath(${self.var}{path}{note} via {self.chosen})"


class TwigJoin(Expr):
    """A pattern-level structural-join plan chosen by the twig planner.

    Replaces an eligible ``DDO(PathExpr(...))`` chain with structural
    predicates, rooted at a catalog-bound variable.  ``spec`` is the
    immutable twig-pattern form (nested ``(name, is_output,
    ((kind, child_spec), ...))`` tuples — see
    :meth:`repro.joins.patterns.TwigPattern.to_spec`); the runtime
    rebuilds the pattern and evaluates it over the stored document's
    element index with the ``chosen`` algorithm (``twigstack`` |
    ``binary`` | ``navigation`` | ``mixed``).

    ``est_rows`` is the cost model's output-cardinality estimate and
    ``edge_ests`` its per-edge pair estimates as ``(parent, kind,
    child, est_pairs)`` tuples; both surface through EXPLAIN as
    ``twig.*`` annotations.  ``holistic_branches`` names the side
    branches a mixed plan filters holistically.  ``fallback`` keeps the
    original expression, compiled alongside, so evaluation degrades to
    navigation whenever the runtime binding is not the indexed document
    the plan was costed for — the same re-verification seam as
    :class:`AccessPath`.
    """

    __slots__ = ("var", "spec", "chosen", "est_rows", "edge_ests",
                 "holistic_branches", "fallback")
    _fields = ("fallback",)

    def __init__(self, var: QName, spec: tuple, chosen: str, est_rows: int,
                 edge_ests: tuple, holistic_branches: tuple,
                 fallback: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.var = var
        self.spec = spec
        self.chosen = chosen
        self.est_rows = est_rows
        self.edge_ests = edge_ests
        self.holistic_branches = holistic_branches
        self.fallback = fallback

    def __repr__(self) -> str:
        def fmt(part: tuple) -> str:
            name, is_output, children = part
            label = name + ("*" if is_output else "")
            if not children:
                return label
            parts = [("//" if kind == "descendant" else "/") + fmt(child)
                     for kind, child in children]
            if len(parts) == 1:
                return label + parts[0]
            return label + "[" + "][".join(parts) + "]"
        return (f"TwigJoin(${self.var} {fmt(self.spec)} via {self.chosen}"
                f" ~{self.est_rows} rows)")


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


class ElementCtor(Expr):
    """Element construction (direct or computed).

    ``name_expr`` is None when ``name`` is a constant QName.  Content
    expressions evaluate to sequences spliced into the element; the
    runtime applies the XQuery content rules (atomics joined with
    spaces, nodes copied).
    """

    __slots__ = ("name", "name_expr", "attributes", "content", "ns_decls")
    _fields = ("name_expr", "attributes", "content")

    def __init__(self, name: QName | None, attributes: list[Expr],
                 content: list[Expr], ns_decls: Sequence[tuple[str, str]] = (),
                 name_expr: Expr | None = None, pos=(0, 0)):
        super().__init__(pos)
        self.name = name
        self.name_expr = name_expr
        self.attributes = attributes
        self.content = content
        self.ns_decls = tuple(ns_decls)

    def __repr__(self) -> str:
        return f"ElementCtor({self.name or '<computed>'})"


class AttributeCtor(Expr):
    """Attribute construction; ``value_parts`` concatenate to the value."""

    __slots__ = ("name", "name_expr", "value_parts")
    _fields = ("name_expr", "value_parts")

    def __init__(self, name: QName | None, value_parts: list[Expr],
                 name_expr: Expr | None = None, pos=(0, 0)):
        super().__init__(pos)
        self.name = name
        self.name_expr = name_expr
        self.value_parts = value_parts

    def __repr__(self) -> str:
        return f"AttributeCtor({self.name or '<computed>'})"


class TextCtor(Expr):
    __slots__ = ("content",)
    _fields = ("content",)

    def __init__(self, content: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.content = content


class CommentCtor(Expr):
    __slots__ = ("content",)
    _fields = ("content",)

    def __init__(self, content: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.content = content


class PICtor(Expr):
    __slots__ = ("target", "target_expr", "content")
    _fields = ("target_expr", "content")

    def __init__(self, target: str | None, content: Expr,
                 target_expr: Expr | None = None, pos=(0, 0)):
        super().__init__(pos)
        self.target = target
        self.target_expr = target_expr
        self.content = content


class DocumentCtor(Expr):
    __slots__ = ("content",)
    _fields = ("content",)

    def __init__(self, content: Expr, pos=(0, 0)):
        super().__init__(pos)
        self.content = content


class OrderedExpr(Expr):
    """``ordered { }`` / ``unordered { }`` — an *annotation* the
    optimizer exploits, per the paper ("unordered is an annotation")."""

    __slots__ = ("operand", "ordered")
    _fields = ("operand",)

    def __init__(self, operand: Expr, ordered: bool, pos=(0, 0)):
        super().__init__(pos)
        self.operand = operand
        self.ordered = ordered


# ---------------------------------------------------------------------------
# Module structure
# ---------------------------------------------------------------------------


class FunctionDecl:
    """``declare function name($p as T, ...) as T { body }``."""

    __slots__ = ("name", "params", "return_type", "body", "external")

    def __init__(self, name: QName,
                 params: list[tuple[QName, SequenceTypeAST | None]],
                 return_type: SequenceTypeAST | None,
                 body: Expr | None, external: bool = False):
        self.name = name
        self.params = params
        self.return_type = return_type
        self.body = body
        self.external = external

    @property
    def arity(self) -> int:
        return len(self.params)


class VariableDecl:
    """``declare variable $x as T {expr}`` or ``... external``."""

    __slots__ = ("name", "type_decl", "value", "external")

    def __init__(self, name: QName, type_decl: SequenceTypeAST | None,
                 value: Expr | None, external: bool = False):
        self.name = name
        self.type_decl = type_decl
        self.value = value
        self.external = external


class Prolog:
    """Everything declared before the query body."""

    __slots__ = ("namespaces", "default_element_ns", "default_function_ns",
                 "variables", "functions", "schema_imports")

    def __init__(self):
        self.namespaces: dict[str, str] = {}
        self.default_element_ns: str = ""
        self.default_function_ns: str | None = None
        self.variables: list[VariableDecl] = []
        self.functions: list[FunctionDecl] = []
        self.schema_imports: list[str] = []


class Module:
    """A parsed main module: prolog + body expression."""

    __slots__ = ("prolog", "body", "source")

    def __init__(self, prolog: Prolog, body: Expr, source: str = ""):
        self.prolog = prolog
        self.body = body
        self.source = source
