"""Recursive-descent XQuery parser.

One pass over the source text, producing the expression tree of
:mod:`repro.xquery.ast`.  The scanner and parser are fused because
XQuery's grammar switches lexical modes inside direct element
constructors (XML syntax with ``{...}`` escapes embedded in query
syntax); a token-stream design needs mode flags everywhere, while a
scanner-driven design just calls a different scanning routine.

XQuery has no reserved words ("for" is a fine element name), so
keywords are recognized positionally, with backtracking marks for the
genuinely ambiguous spots (computed constructors, ``validate {``).

The supported grammar is the large subset inventoried in DESIGN.md:
prolog declarations, FLWOR with stable order-by, quantifiers,
typeswitch, if/then/else, the four comparison families, arithmetic,
set operators, full path expressions with predicates, direct and
computed constructors, type operators, and ``validate``.
"""

from __future__ import annotations

from decimal import Decimal

from repro.errors import ParseError
from repro.qname import FN_NS, NamespaceBindings, QName
from repro.xdm.items import AtomicValue
from repro.xquery import ast
from repro.xsd import types as T

_WS = " \t\r\n"
_BUILTIN_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

_AXES = (
    "child", "descendant-or-self", "descendant", "attribute", "self",
    "ancestor-or-self", "ancestor", "parent", "following-sibling",
    "preceding-sibling", "following", "preceding",
)

_VALUE_COMP = ("eq", "ne", "lt", "le", "gt", "ge")
_GENERAL_COMP = ("!=", "<=", ">=", "=", "<", ">")  # longest match first
_NODE_COMP = ("isnot", "is")
_ORDER_COMP = ("<<", ">>")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


class _Scanner:
    """Character scanner with marks, line tracking, and QName support."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- position / errors ----------------------------------------------------

    def location(self, pos: int | None = None) -> tuple[int, int]:
        p = self.pos if pos is None else pos
        line = self.text.count("\n", 0, p) + 1
        col = p - (self.text.rfind("\n", 0, p) + 1) + 1
        return (line, col)

    def error(self, message: str) -> ParseError:
        line, col = self.location()
        return ParseError(message, line, col)

    def mark(self) -> int:
        return self.pos

    def reset(self, mark: int) -> None:
        self.pos = mark

    # -- whitespace / comments ---------------------------------------------

    def skip_ws(self) -> None:
        text = self.text
        while self.pos < self.length:
            ch = text[self.pos]
            if ch in _WS:
                self.pos += 1
            elif text.startswith("(:", self.pos):
                depth = 1
                self.pos += 2
                while self.pos < self.length and depth:
                    if text.startswith("(:", self.pos):
                        depth += 1
                        self.pos += 2
                    elif text.startswith(":)", self.pos):
                        depth -= 1
                        self.pos += 2
                    else:
                        self.pos += 1
                if depth:
                    raise self.error("unterminated comment '(:'")
            else:
                return

    # -- matching ---------------------------------------------------------------

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < self.length else ""

    def startswith(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def match(self, literal: str) -> bool:
        """Consume ``literal`` if present (after whitespace)."""
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.match(literal):
            raise self.error(f"expected {literal!r}")

    def match_word(self, word: str) -> bool:
        """Consume ``word`` only if followed by a non-name character."""
        self.skip_ws()
        if not self.text.startswith(word, self.pos):
            return False
        end = self.pos + len(word)
        if end < self.length and _is_name_char(self.text[end]):
            return False
        self.pos = end
        return True

    def peek_word(self, word: str) -> bool:
        mark = self.pos
        ok = self.match_word(word)
        self.pos = mark
        return ok

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= self.length

    # -- names ----------------------------------------------------------------

    def scan_ncname(self) -> str:
        self.skip_ws()
        if self.pos >= self.length or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        start = self.pos
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start: self.pos]

    def scan_lexical_qname(self) -> str:
        """``ncname`` or ``ncname:ncname`` (no whitespace around ':')."""
        name = self.scan_ncname()
        if self.peek() == ":" and _is_name_start(self.peek(1)):
            self.pos += 1
            return name + ":" + self.scan_ncname()
        return name

    def at_name(self) -> bool:
        self.skip_ws()
        return self.pos < self.length and _is_name_start(self.text[self.pos])


class Parser:
    """Parses one main module."""

    def __init__(self, text: str):
        self.s = _Scanner(text)
        self.ns = NamespaceBindings()
        self.prolog = ast.Prolog()

    # =====================================================================
    # Module & prolog
    # =====================================================================

    def parse_module(self) -> ast.Module:
        self._parse_prolog()
        body = self.parse_expr()
        self.s.skip_ws()
        if not self.s.at_end():
            raise self.s.error(f"unexpected trailing input {self.s.peek()!r}")
        return ast.Module(self.prolog, body, self.s.text)

    def _parse_prolog(self) -> None:
        s = self.s
        while True:
            mark = s.mark()
            if s.match_word("declare"):
                if s.match_word("namespace"):
                    prefix = s.scan_ncname()
                    s.expect("=")
                    uri = self._string_literal_value()
                    self.prolog.namespaces[prefix] = uri
                    self.ns.bind(prefix, uri)
                    s.match(";")
                elif s.match_word("default"):
                    if s.match_word("element"):
                        s.expect("namespace")
                        uri = self._string_literal_value()
                        self.prolog.default_element_ns = uri
                    elif s.match_word("function"):
                        s.expect("namespace")
                        uri = self._string_literal_value()
                        self.prolog.default_function_ns = uri
                    else:
                        raise s.error("expected 'element' or 'function' after 'default'")
                    s.match(";")
                elif s.match_word("variable"):
                    s.expect("$")
                    name = self._var_name()
                    type_decl = None
                    if s.match_word("as"):
                        type_decl = self.parse_sequence_type()
                    if s.match_word("external"):
                        self.prolog.variables.append(
                            ast.VariableDecl(name, type_decl, None, external=True))
                    elif s.match(":="):
                        value = self.parse_expr_single()
                        self.prolog.variables.append(
                            ast.VariableDecl(name, type_decl, value))
                    elif s.match("{"):
                        value = self.parse_expr()
                        s.expect("}")
                        self.prolog.variables.append(
                            ast.VariableDecl(name, type_decl, value))
                    else:
                        raise s.error("expected ':=', '{' or 'external' in variable declaration")
                    s.match(";")
                elif s.match_word("function"):
                    self._parse_function_decl()
                    s.match(";")
                else:
                    # not a prolog declaration we know: back out, let the
                    # body parser handle it (or fail with a better message)
                    s.reset(mark)
                    return
            elif s.match_word("import"):
                if s.match_word("schema"):
                    # "import schema namespace p = 'uri';" — recorded, the
                    # engine binds actual Schema objects at compile time
                    if s.match_word("namespace"):
                        prefix = s.scan_ncname()
                        s.expect("=")
                        uri = self._string_literal_value()
                        self.ns.bind(prefix, uri)
                    else:
                        uri = self._string_literal_value()
                    self.prolog.schema_imports.append(uri)
                    s.match(";")
                else:
                    raise s.error("only 'import schema' is supported")
            else:
                return

    def _parse_function_decl(self) -> None:
        s = self.s
        lexical = s.scan_lexical_qname()
        name = self._function_qname(lexical)
        s.expect("(")
        params: list[tuple[QName, ast.SequenceTypeAST | None]] = []
        if not s.match(")"):
            while True:
                s.expect("$")
                pname = self._var_name()
                ptype = self.parse_sequence_type() if s.match_word("as") else None
                params.append((pname, ptype))
                if not s.match(","):
                    break
            s.expect(")")
        return_type = self.parse_sequence_type() if s.match_word("as") else None
        if s.match_word("external"):
            self.prolog.functions.append(
                ast.FunctionDecl(name, params, return_type, None, external=True))
            return
        s.expect("{")
        body = self.parse_expr()
        s.expect("}")
        self.prolog.functions.append(
            ast.FunctionDecl(name, params, return_type, body))

    # =====================================================================
    # Expressions
    # =====================================================================

    def parse_expr(self) -> ast.Expr:
        """Expr := ExprSingle ("," ExprSingle)*"""
        pos = self.s.location()
        first = self.parse_expr_single()
        if not self.s.match(","):
            return first
        items = [first, self.parse_expr_single()]
        while self.s.match(","):
            items.append(self.parse_expr_single())
        return ast.SequenceExpr(items, pos)

    def parse_expr_single(self) -> ast.Expr:
        s = self.s
        s.skip_ws()
        pos = s.location()
        if (s.peek_word("for") or s.peek_word("let")) and self._next_nonword_is("$"):
            return self._parse_flwor(pos)
        if (s.peek_word("some") or s.peek_word("every")) and self._next_nonword_is("$"):
            return self._parse_quantified(pos)
        if s.peek_word("if") and self._next_nonword_is("("):
            return self._parse_if(pos)
        if s.peek_word("typeswitch") and self._next_nonword_is("("):
            return self._parse_typeswitch(pos)
        return self._parse_or()

    def _next_nonword_is(self, ch: str) -> bool:
        """After the *next word*, is the following non-space char ``ch``?"""
        s = self.s
        mark = s.mark()
        try:
            s.scan_ncname()
        except ParseError:
            s.reset(mark)
            return False
        s.skip_ws()
        result = s.peek() == ch
        s.reset(mark)
        return result

    # -- FLWOR -----------------------------------------------------------------

    def _parse_flwor(self, pos) -> ast.Expr:
        s = self.s
        clauses: list[ast.ForClause | ast.LetClause] = []
        while True:
            if s.match_word("for"):
                while True:
                    s.expect("$")
                    var = self._var_name()
                    type_decl = self.parse_sequence_type() if s.match_word("as") else None
                    pos_var = None
                    if s.match_word("at"):
                        s.expect("$")
                        pos_var = self._var_name()
                    s.expect("in")
                    expr = self.parse_expr_single()
                    clauses.append(ast.ForClause(var, expr, pos_var, type_decl))
                    if not s.match(","):
                        break
            elif s.match_word("let"):
                while True:
                    s.expect("$")
                    var = self._var_name()
                    type_decl = self.parse_sequence_type() if s.match_word("as") else None
                    s.expect(":=")
                    expr = self.parse_expr_single()
                    clauses.append(ast.LetClause(var, expr, type_decl))
                    if not s.match(","):
                        break
            else:
                break
        where = None
        if s.match_word("where"):
            where = self.parse_expr_single()
        group: list[tuple[QName, ast.Expr]] = []
        if s.match_word("group"):
            s.expect("by")
            while True:
                s.expect("$")
                gvar = self._var_name()
                if s.match(":="):
                    key = self.parse_expr_single()
                else:
                    key = ast.VarRef(gvar, s.location())
                group.append((gvar, key))
                if not s.match(","):
                    break
        stable = False
        order: list[ast.OrderSpec] = []
        mark = s.mark()
        if s.match_word("stable"):
            if s.peek_word("order"):
                stable = True
            else:
                s.reset(mark)
        if s.match_word("order"):
            s.expect("by")
            while True:
                key = self.parse_expr_single()
                descending = False
                if s.match_word("descending"):
                    descending = True
                else:
                    s.match_word("ascending")
                empty_least = True
                if s.match_word("empty"):
                    if s.match_word("greatest"):
                        empty_least = False
                    else:
                        s.expect("least")
                order.append(ast.OrderSpec(key, descending, empty_least))
                if not s.match(","):
                    break
        s.expect("return")
        ret = self.parse_expr_single()
        return ast.FLWOR(clauses, where, order, ret, stable, pos, group)

    def _parse_quantified(self, pos) -> ast.Expr:
        s = self.s
        kind = "some" if s.match_word("some") else ("every" if s.match_word("every") else None)
        if kind is None:
            raise s.error("expected 'some' or 'every'")
        bindings: list[tuple[QName, ast.Expr]] = []
        while True:
            s.expect("$")
            var = self._var_name()
            if s.match_word("as"):
                self.parse_sequence_type()  # accepted, unchecked here
            s.expect("in")
            seq = self.parse_expr_single()
            bindings.append((var, seq))
            if not s.match(","):
                break
        s.expect("satisfies")
        cond = self.parse_expr_single()
        # normalize multi-variable quantifiers into nesting now
        expr = cond
        for var, seq in reversed(bindings[1:]):
            expr = ast.Quantified(kind, var, seq, expr, pos)
        return ast.Quantified(kind, bindings[0][0], bindings[0][1], expr, pos)

    def _parse_if(self, pos) -> ast.Expr:
        s = self.s
        s.expect("if")
        s.expect("(")
        cond = self.parse_expr()
        s.expect(")")
        s.expect("then")
        then = self.parse_expr_single()
        s.expect("else")
        orelse = self.parse_expr_single()
        return ast.IfExpr(cond, then, orelse, pos)

    def _parse_typeswitch(self, pos) -> ast.Expr:
        s = self.s
        s.expect("typeswitch")
        s.expect("(")
        operand = self.parse_expr()
        s.expect(")")
        cases: list[ast.TypeswitchCase] = []
        while s.match_word("case"):
            var = None
            mark = s.mark()
            if s.match("$"):
                var = self._var_name()
                if not s.match_word("as"):
                    s.reset(mark)
                    var = None
            seq_type = self.parse_sequence_type()
            s.expect("return")
            body = self.parse_expr_single()
            cases.append(ast.TypeswitchCase(var, seq_type, body))
        if not cases:
            raise s.error("typeswitch requires at least one case")
        s.expect("default")
        dvar = None
        if s.match("$"):
            dvar = self._var_name()
        s.expect("return")
        dbody = self.parse_expr_single()
        return ast.Typeswitch(operand, cases, ast.TypeswitchCase(dvar, None, dbody), pos)

    # -- binary operator ladder ----------------------------------------------

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.s.match_word("or"):
            pos = self.s.location()
            left = ast.OrExpr(left, self._parse_and(), pos)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self.s.match_word("and"):
            pos = self.s.location()
            left = ast.AndExpr(left, self._parse_comparison(), pos)
        return left

    def _parse_comparison(self) -> ast.Expr:
        s = self.s
        left = self._parse_range()
        pos = s.location()
        for op in _VALUE_COMP:
            if s.match_word(op):
                return ast.Comparison(op, "value", left, self._parse_range(), pos)
        for op in _NODE_COMP:
            if s.match_word(op):
                return ast.Comparison(op, "node", left, self._parse_range(), pos)
        s.skip_ws()
        for op in _ORDER_COMP:
            if s.startswith(op):
                s.pos += len(op)
                return ast.Comparison(op, "order", left, self._parse_range(), pos)
        for op in _GENERAL_COMP:
            if s.startswith(op):
                s.pos += len(op)
                return ast.Comparison(op, "general", left, self._parse_range(), pos)
        return left

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self.s.match_word("to"):
            pos = self.s.location()
            return ast.RangeExpr(left, self._parse_additive(), pos)
        return left

    def _parse_additive(self) -> ast.Expr:
        s = self.s
        left = self._parse_multiplicative()
        while True:
            s.skip_ws()
            if s.peek() == "+":
                s.pos += 1
                pos = s.location()
                left = ast.Arithmetic("+", left, self._parse_multiplicative(), pos)
            elif s.peek() == "-":
                s.pos += 1
                pos = s.location()
                left = ast.Arithmetic("-", left, self._parse_multiplicative(), pos)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        s = self.s
        left = self._parse_union()
        while True:
            s.skip_ws()
            pos = s.location()
            if s.peek() == "*" and not self._star_is_name_test():
                s.pos += 1
                left = ast.Arithmetic("*", left, self._parse_union(), pos)
            elif s.match_word("div"):
                left = ast.Arithmetic("div", left, self._parse_union(), pos)
            elif s.match_word("idiv"):
                left = ast.Arithmetic("idiv", left, self._parse_union(), pos)
            elif s.match_word("mod"):
                left = ast.Arithmetic("mod", left, self._parse_union(), pos)
            else:
                return left

    def _star_is_name_test(self) -> bool:
        # after an expression, '*' is always the operator in this grammar
        return False

    def _parse_union(self) -> ast.Expr:
        s = self.s
        left = self._parse_intersect_except()
        while True:
            pos = s.location()
            if s.match_word("union"):
                left = ast.SetOp("union", left, self._parse_intersect_except(), pos)
                continue
            s.skip_ws()
            if s.peek() == "|" and s.peek(1) != "|":
                s.pos += 1
                left = ast.SetOp("union", left, self._parse_intersect_except(), pos)
                continue
            return left

    def _parse_intersect_except(self) -> ast.Expr:
        s = self.s
        left = self._parse_instance_of()
        while True:
            pos = s.location()
            if s.match_word("intersect"):
                left = ast.SetOp("intersect", left, self._parse_instance_of(), pos)
            elif s.match_word("except"):
                left = ast.SetOp("except", left, self._parse_instance_of(), pos)
            else:
                return left

    def _parse_instance_of(self) -> ast.Expr:
        left = self._parse_treat()
        s = self.s
        mark = s.mark()
        if s.match_word("instance"):
            if s.match_word("of"):
                pos = s.location()
                return ast.InstanceOf(left, self.parse_sequence_type(), pos)
            s.reset(mark)
        return left

    def _parse_treat(self) -> ast.Expr:
        left = self._parse_castable()
        s = self.s
        mark = s.mark()
        if s.match_word("treat"):
            if s.match_word("as"):
                pos = s.location()
                return ast.TreatExpr(left, self.parse_sequence_type(), pos)
            s.reset(mark)
        return left

    def _parse_castable(self) -> ast.Expr:
        left = self._parse_cast()
        s = self.s
        mark = s.mark()
        if s.match_word("castable"):
            if s.match_word("as"):
                pos = s.location()
                name, optional = self._parse_single_type()
                return ast.CastableExpr(left, name, optional, pos)
            s.reset(mark)
        return left

    def _parse_cast(self) -> ast.Expr:
        left = self._parse_unary()
        s = self.s
        mark = s.mark()
        if s.match_word("cast"):
            if s.match_word("as"):
                pos = s.location()
                name, optional = self._parse_single_type()
                return ast.CastExpr(left, name, optional, pos)
            s.reset(mark)
        return left

    def _parse_single_type(self) -> tuple[QName, bool]:
        lexical = self.s.scan_lexical_qname()
        name = self._type_qname(lexical)
        optional = self.s.match("?")
        return name, optional

    def _parse_unary(self) -> ast.Expr:
        s = self.s
        s.skip_ws()
        pos = s.location()
        if s.peek() == "-" :
            s.pos += 1
            return ast.UnaryExpr("-", self._parse_unary(), pos)
        if s.peek() == "+":
            s.pos += 1
            return ast.UnaryExpr("+", self._parse_unary(), pos)
        return self._parse_value_expr()

    def _parse_value_expr(self) -> ast.Expr:
        return self._parse_path()

    # =====================================================================
    # Paths
    # =====================================================================

    def _parse_path(self) -> ast.Expr:
        s = self.s
        s.skip_ws()
        pos = s.location()
        if s.startswith("//"):
            s.pos += 2
            root = ast.RootExpr(pos)
            ds = ast.Step("descendant-or-self", ast.NodeTest("node"), pos)
            left = ast.PathExpr(root, ds, pos)
            return self._parse_relative_path(left)
        if s.peek() == "/":
            s.pos += 1
            s.skip_ws()
            if self._at_step_start():
                return self._parse_relative_path(ast.RootExpr(pos))
            return ast.RootExpr(pos)
        return self._parse_relative_path(None)

    def _at_step_start(self) -> bool:
        s = self.s
        s.skip_ws()
        ch = s.peek()
        if ch in "@*(.$'\"":
            return ch in "@*." or _is_name_start(ch) or ch == "$" or ch == "("
        return _is_name_start(ch)

    def _parse_relative_path(self, left: ast.Expr | None) -> ast.Expr:
        s = self.s
        step = self._parse_step()
        expr = step if left is None else ast.PathExpr(left, step, step.pos)
        while True:
            s.skip_ws()
            pos = s.location()
            if s.startswith("//"):
                s.pos += 2
                ds = ast.Step("descendant-or-self", ast.NodeTest("node"), pos)
                expr = ast.PathExpr(expr, ds, pos)
                expr = ast.PathExpr(expr, self._parse_step(), pos)
            elif s.peek() == "/":
                s.pos += 1
                expr = ast.PathExpr(expr, self._parse_step(), pos)
            else:
                return expr

    def _parse_step(self) -> ast.Expr:
        """StepExpr := AxisStep Predicates | FilterExpr (primary + predicates)."""
        s = self.s
        s.skip_ws()
        pos = s.location()
        step: ast.Expr | None = None

        if s.startswith(".."):
            s.pos += 2
            step = ast.Step("parent", ast.NodeTest("node"), pos)
        elif s.peek() == "@":
            s.pos += 1
            test = self._parse_node_test(default_kind="attribute")
            step = ast.Step("attribute", test, pos)
        else:
            axis = self._try_parse_axis()
            if axis is not None:
                default_kind = "attribute" if axis == "attribute" else "element"
                test = self._parse_node_test(default_kind=default_kind)
                step = ast.Step(axis, test, pos)
            else:
                # soft keywords (computed constructors, ordered{}) win over
                # same-named element steps when their syntax actually follows
                step = self._try_special_primary(pos)
                if step is None:
                    if self._at_kind_test() or s.peek() == "*" or (
                            s.at_name() and self._name_is_step()):
                        test = self._parse_node_test(default_kind="element")
                        step = ast.Step("child", test, pos)
                    else:
                        step = self._parse_primary()

        # predicates
        while True:
            s.skip_ws()
            if s.peek() == "[":
                s.pos += 1
                ppos = s.location()
                predicate = self.parse_expr()
                s.expect("]")
                step = ast.Filter(step, predicate, ppos)
            else:
                return step

    def _try_special_primary(self, pos) -> ast.Expr | None:
        """Computed constructors, validate{}, ordered/unordered blocks."""
        s = self.s
        if s.peek_word("validate"):
            mark = s.mark()
            s.match_word("validate")
            mode = "strict"
            for candidate in ("strict", "lax", "skip"):
                if s.match_word(candidate):
                    mode = candidate
                    break
            if s.match("{"):
                operand = self.parse_expr()
                s.expect("}")
                return ast.ValidateExpr(operand, mode, pos)
            s.reset(mark)
        for keyword in ("element", "attribute", "document", "text", "comment",
                        "processing-instruction"):
            if s.peek_word(keyword):
                return self._try_parse_computed_constructor(keyword, pos)
        if s.peek_word("ordered") or s.peek_word("unordered"):
            mark = s.mark()
            ordered = s.match_word("ordered")
            if not ordered:
                s.match_word("unordered")
            if s.match("{"):
                inner = self.parse_expr()
                s.expect("}")
                return ast.OrderedExpr(inner, ordered, pos)
            s.reset(mark)
        return None

    def _try_parse_axis(self) -> str | None:
        s = self.s
        s.skip_ws()
        for axis in _AXES:
            if s.startswith(axis):
                end = s.pos + len(axis)
                rest = s.text[end: end + 2]
                if rest == "::":
                    s.pos = end + 2
                    return axis
        # legacy spelling in the tutorial: "ancestors::"
        if s.startswith("ancestors::"):
            s.pos += len("ancestors::")
            return "ancestor"
        if s.startswith("descendent::"):
            s.pos += len("descendent::")
            return "descendant"
        return None

    _KIND_TESTS = ("node", "text", "comment", "processing-instruction",
                   "element", "attribute", "document-node", "item")

    def _at_kind_test(self) -> bool:
        s = self.s
        s.skip_ws()
        for kind in self._KIND_TESTS:
            if s.startswith(kind):
                end = s.pos + len(kind)
                rest = s.text[end:].lstrip(_WS)
                if rest.startswith("(") and not _is_name_char(s.text[end: end + 1] or " "):
                    return True
        return False

    def _name_is_step(self) -> bool:
        """A bare name begins a step unless it's a function call —
        function calls are primary expressions handled elsewhere but
        they also *are* steps per the grammar; we just parse them in
        _parse_primary.  Returns False when 'name(' looks like a call.
        """
        s = self.s
        mark = s.mark()
        try:
            s.scan_lexical_qname()
        except ParseError:
            s.reset(mark)
            return False
        s.skip_ws()
        is_call = s.peek() == "("
        s.reset(mark)
        return not is_call

    def _parse_node_test(self, default_kind: str) -> ast.NodeTest:
        s = self.s
        s.skip_ws()
        if self._at_kind_test():
            return self._parse_kind_test()
        # name test, possibly with wildcards
        if s.peek() == "*":
            s.pos += 1
            if s.peek() == ":" and _is_name_start(s.peek(1)):
                s.pos += 1
                local = s.scan_ncname()
                return ast.NodeTest(default_kind, QName("*", local))
            return ast.NodeTest(default_kind, None)
        name = s.scan_ncname()
        if s.peek() == ":" and s.peek(1) == "*":
            s.pos += 2
            uri = self.ns.lookup(name)
            if uri is None:
                raise s.error(f"undeclared namespace prefix '{name}'")
            return ast.NodeTest(default_kind, QName(uri, "*", name))
        if s.peek() == ":" and _is_name_start(s.peek(1)):
            s.pos += 1
            local = s.scan_ncname()
            uri = self.ns.lookup(name)
            if uri is None:
                raise s.error(f"undeclared namespace prefix '{name}'")
            return ast.NodeTest(default_kind, QName(uri, local, name))
        default_uri = self.prolog.default_element_ns if default_kind == "element" else ""
        return ast.NodeTest(default_kind, QName(default_uri, name))

    def _parse_kind_test(self) -> ast.NodeTest:
        s = self.s
        kind = None
        for candidate in self._KIND_TESTS:
            if s.startswith(candidate):
                kind = candidate
                s.pos += len(candidate)
                break
        assert kind is not None
        s.expect("(")
        name: QName | None = None
        type_name: QName | None = None
        pi_target: str | None = None
        if not s.match(")"):
            if kind == "processing-instruction":
                s.skip_ws()
                if s.peek() in "'\"":
                    pi_target = self._string_literal_value()
                else:
                    pi_target = s.scan_ncname()
            elif kind in ("element", "attribute", "document-node"):
                s.skip_ws()
                if s.peek() == "*":
                    s.pos += 1
                else:
                    lexical = s.scan_lexical_qname()
                    default_uri = self.prolog.default_element_ns if kind != "attribute" else ""
                    name = QName.parse(lexical, self.ns, default_uri)
                if s.match(","):
                    lexical = s.scan_lexical_qname()
                    type_name = self._type_qname(lexical)
            s.expect(")")
        if kind == "document-node":
            kind = "document"
        return ast.NodeTest(kind, name, type_name, pi_target)

    # =====================================================================
    # Primary expressions
    # =====================================================================

    def _parse_primary(self) -> ast.Expr:
        s = self.s
        s.skip_ws()
        pos = s.location()
        ch = s.peek()

        if ch == "$":
            s.pos += 1
            return ast.VarRef(self._var_name(), pos)
        if ch == "(":
            s.pos += 1
            if s.match(")"):
                return ast.EmptySequence(pos)
            inner = self.parse_expr()
            s.expect(")")
            return inner
        if ch == ".":
            nxt = s.peek(1)
            if not nxt.isdigit():
                s.pos += 1
                return ast.ContextItem(pos)
        if ch in "'\"":
            return ast.Literal(AtomicValue(self._string_literal_value(), T.XS_STRING), pos)
        if ch.isdigit() or (ch == "." and s.peek(1).isdigit()):
            return self._parse_numeric_literal(pos)
        if ch == "<":
            return self._parse_direct_constructor(pos)

        # computed constructors (with backtracking: these are soft keywords)
        for keyword in ("element", "attribute", "document", "text", "comment",
                        "processing-instruction"):
            if s.peek_word(keyword):
                ctor = self._try_parse_computed_constructor(keyword, pos)
                if ctor is not None:
                    return ctor
                break

        if s.peek_word("ordered") or s.peek_word("unordered"):
            mark = s.mark()
            ordered = s.match_word("ordered")
            if not ordered:
                s.match_word("unordered")
            if s.match("{"):
                inner = self.parse_expr()
                s.expect("}")
                return ast.OrderedExpr(inner, ordered, pos)
            s.reset(mark)

        if s.at_name():
            lexical = s.scan_lexical_qname()
            s.skip_ws()
            if s.peek() == "(":
                s.pos += 1
                args: list[ast.Expr] = []
                if not s.match(")"):
                    while True:
                        args.append(self.parse_expr_single())
                        if not s.match(","):
                            break
                    s.expect(")")
                return ast.FunctionCall(self._function_qname(lexical), args, pos)
            raise s.error(f"unexpected name {lexical!r} in expression position")
        raise s.error(f"unexpected character {ch!r}")

    def _parse_numeric_literal(self, pos) -> ast.Literal:
        s = self.s
        start = s.pos
        while s.peek().isdigit():
            s.pos += 1
        is_decimal = False
        if s.peek() == "." and s.peek(1).isdigit():
            is_decimal = True
            s.pos += 1
            while s.peek().isdigit():
                s.pos += 1
        elif s.peek() == "." and not _is_name_start(s.peek(1)):
            # "125." is a decimal literal
            is_decimal = True
            s.pos += 1
        is_double = False
        if s.peek() in "eE":
            mark = s.pos
            s.pos += 1
            if s.peek() in "+-":
                s.pos += 1
            if s.peek().isdigit():
                is_double = True
                while s.peek().isdigit():
                    s.pos += 1
            else:
                s.pos = mark
        text = s.text[start: s.pos]
        if is_double:
            return ast.Literal(AtomicValue(float(text), T.XS_DOUBLE), pos)
        if is_decimal:
            return ast.Literal(AtomicValue(Decimal(text), T.XS_DECIMAL), pos)
        return ast.Literal(AtomicValue(int(text), T.XS_INTEGER), pos)

    def _string_literal_value(self) -> str:
        s = self.s
        s.skip_ws()
        quote = s.peek()
        if quote not in "'\"":
            raise s.error("expected a string literal")
        s.pos += 1
        out: list[str] = []
        while True:
            if s.pos >= s.length:
                raise s.error("unterminated string literal")
            ch = s.text[s.pos]
            if ch == quote:
                if s.peek(1) == quote:  # doubled quote escape
                    out.append(quote)
                    s.pos += 2
                    continue
                s.pos += 1
                return "".join(out)
            if ch == "&":
                out.append(self._entity_ref())
                continue
            out.append(ch)
            s.pos += 1

    def _entity_ref(self) -> str:
        s = self.s
        semi = s.text.find(";", s.pos + 1)
        if semi < 0:
            raise s.error("unterminated entity reference")
        name = s.text[s.pos + 1: semi]
        s.pos = semi + 1
        if name.startswith("#x") or name.startswith("#X"):
            return chr(int(name[2:], 16))
        if name.startswith("#"):
            return chr(int(name[1:]))
        if name in _BUILTIN_ENTITIES:
            return _BUILTIN_ENTITIES[name]
        raise s.error(f"undefined entity &{name};")

    # =====================================================================
    # Constructors
    # =====================================================================

    def _try_parse_computed_constructor(self, keyword: str, pos) -> ast.Expr | None:
        s = self.s
        mark = s.mark()
        s.match_word(keyword)
        s.skip_ws()

        if keyword in ("document", "text", "comment"):
            if not s.match("{"):
                s.reset(mark)
                return None
            if s.match("}"):
                content: ast.Expr = ast.EmptySequence(pos)
            else:
                content = self.parse_expr()
                s.expect("}")
            if keyword == "document":
                return ast.DocumentCtor(content, pos)
            if keyword == "text":
                return ast.TextCtor(content, pos)
            return ast.CommentCtor(content, pos)

        # element / attribute / processing-instruction: name or {name-expr}
        name: QName | None = None
        name_expr: ast.Expr | None = None
        target: str | None = None
        if s.match("{"):
            name_expr = self.parse_expr()
            s.expect("}")
        elif s.at_name():
            lexical = s.scan_lexical_qname()
            if keyword == "processing-instruction":
                target = lexical
            else:
                default_uri = self.prolog.default_element_ns if keyword == "element" else ""
                name = QName.parse(lexical, self.ns, default_uri)
        else:
            s.reset(mark)
            return None
        if not s.match("{"):
            s.reset(mark)
            return None
        if s.match("}"):
            content = ast.EmptySequence(pos)
        else:
            content = self.parse_expr()
            s.expect("}")

        if keyword == "element":
            return ast.ElementCtor(name, [], [content], (), name_expr, pos)
        if keyword == "attribute":
            return ast.AttributeCtor(name, [content], name_expr, pos)
        return ast.PICtor(target, content, name_expr, pos)

    def _parse_direct_constructor(self, pos) -> ast.Expr:
        s = self.s
        if s.startswith("<!--"):
            end = s.text.find("-->", s.pos + 4)
            if end < 0:
                raise s.error("unterminated comment constructor")
            content = s.text[s.pos + 4: end]
            s.pos = end + 3
            return ast.CommentCtor(ast.Literal(AtomicValue(content, T.XS_STRING), pos), pos)
        if s.startswith("<?"):
            end = s.text.find("?>", s.pos + 2)
            if end < 0:
                raise s.error("unterminated PI constructor")
            body = s.text[s.pos + 2: end]
            s.pos = end + 2
            target, _, rest = body.partition(" ")
            return ast.PICtor(target, ast.Literal(AtomicValue(rest, T.XS_STRING), pos), None, pos)

        s.expect("<")
        lexical = s.scan_lexical_qname()

        attributes: list[ast.Expr] = []
        raw_attrs: list[tuple[str, list[ast.Expr], tuple[int, int]]] = []
        ns_decls: list[tuple[str, str]] = []

        # scan attributes (values may contain enclosed expressions)
        while True:
            s.skip_ws()
            if s.peek() in ("/", ">", ""):
                break
            aname = s.scan_lexical_qname()
            if any(existing == aname for existing, _, _ in raw_attrs) or \
                    any(f"xmlns:{prefix}" == aname or (prefix == "" and aname == "xmlns")
                        for prefix, _ in ns_decls):
                raise s.error(f"duplicate attribute {aname!r} in constructor")
            apos = s.location()
            s.expect("=")
            parts = self._parse_attr_value()
            if aname == "xmlns" or aname.startswith("xmlns:"):
                if len(parts) != 1 or not isinstance(parts[0], ast.Literal):
                    raise s.error("namespace declaration value must be a literal")
                prefix = aname[6:] if aname.startswith("xmlns:") else ""
                uri = parts[0].value.value
                ns_decls.append((prefix, uri))
            else:
                raw_attrs.append((aname, parts, apos))

        # open a namespace scope covering the element's own declarations
        self.ns.push(dict(ns_decls))
        try:
            default_uri = self.ns.lookup("") or self.prolog.default_element_ns
            name = QName.parse(lexical, self.ns, default_uri)
            for aname, parts, apos in raw_attrs:
                aqname = QName.parse(aname, self.ns, default_uri="")
                attributes.append(ast.AttributeCtor(aqname, parts, None, apos))

            content: list[ast.Expr] = []
            if s.match("/>"):
                return ast.ElementCtor(name, attributes, content, ns_decls, None, pos)
            s.expect(">")
            self._parse_element_content(content)
            # closing tag
            closing = s.scan_lexical_qname()
            if closing != lexical:
                raise s.error(f"mismatched closing tag </{closing}>, expected </{lexical}>")
            s.skip_ws()
            s.expect(">")
            return ast.ElementCtor(name, attributes, content, ns_decls, None, pos)
        finally:
            self.ns.pop()

    def _parse_attr_value(self) -> list[ast.Expr]:
        """Parse a quoted attribute value with embedded ``{expr}``."""
        s = self.s
        s.skip_ws()
        quote = s.peek()
        if quote not in "'\"":
            raise s.error("attribute value must be quoted")
        s.pos += 1
        parts: list[ast.Expr] = []
        buffer: list[str] = []
        pos = s.location()

        def flush() -> None:
            if buffer:
                parts.append(ast.Literal(AtomicValue("".join(buffer), T.XS_STRING), pos))
                buffer.clear()

        while True:
            if s.pos >= s.length:
                raise s.error("unterminated attribute value")
            ch = s.text[s.pos]
            if ch == quote:
                if s.peek(1) == quote:
                    buffer.append(quote)
                    s.pos += 2
                    continue
                s.pos += 1
                flush()
                return parts
            if ch == "{":
                if s.peek(1) == "{":
                    buffer.append("{")
                    s.pos += 2
                    continue
                flush()
                s.pos += 1
                parts.append(self.parse_expr())
                s.expect("}")
                continue
            if ch == "}":
                if s.peek(1) == "}":
                    buffer.append("}")
                    s.pos += 2
                    continue
                raise s.error("unescaped '}' in attribute value")
            if ch == "&":
                buffer.append(self._entity_ref())
                continue
            buffer.append(ch)
            s.pos += 1

    def _parse_element_content(self, content: list[ast.Expr]) -> None:
        """Parse direct element content up to (and consuming) ``</``."""
        s = self.s
        buffer: list[str] = []

        def flush(keep_boundary_ws: bool = False) -> None:
            if not buffer:
                return
            text = "".join(buffer)
            buffer.clear()
            if not text:
                return
            if not keep_boundary_ws and not text.strip():
                return  # boundary whitespace is stripped by default policy
            pos = s.location()
            content.append(ast.TextCtor(
                ast.Literal(AtomicValue(text, T.XS_STRING), pos), pos))

        while True:
            if s.pos >= s.length:
                raise s.error("unterminated element constructor content")
            ch = s.text[s.pos]
            if ch == "<":
                if s.startswith("</"):
                    flush()
                    s.pos += 2
                    return
                if s.startswith("<![CDATA["):
                    end = s.text.find("]]>", s.pos + 9)
                    if end < 0:
                        raise s.error("unterminated CDATA section")
                    cdata = s.text[s.pos + 9: end]
                    s.pos = end + 3
                    if cdata:
                        pos = s.location()
                        content.append(ast.TextCtor(
                            ast.Literal(AtomicValue(cdata, T.XS_STRING), pos), pos))
                    continue
                flush()
                pos = s.location()
                content.append(self._parse_direct_constructor(pos))
                continue
            if ch == "{":
                if s.peek(1) == "{":
                    buffer.append("{")
                    s.pos += 2
                    continue
                flush()
                s.pos += 1
                content.append(self.parse_expr())
                s.expect("}")
                continue
            if ch == "}":
                if s.peek(1) == "}":
                    buffer.append("}")
                    s.pos += 2
                    continue
                raise s.error("unescaped '}' in element content")
            if ch == "&":
                buffer.append(self._entity_ref())
                continue
            buffer.append(ch)
            s.pos += 1

    # =====================================================================
    # Types and names
    # =====================================================================

    def parse_sequence_type(self) -> ast.SequenceTypeAST:
        s = self.s
        s.skip_ws()
        if s.match_word("empty"):
            s.expect("(")
            s.expect(")")
            return ast.SequenceTypeAST("empty")
        if self._at_kind_test():
            test = self._parse_kind_test()
            occ = self._occurrence()
            kind = "item" if test.kind == "item" else test.kind
            return ast.SequenceTypeAST(kind, test.name, test.type_name, occ)
        lexical = s.scan_lexical_qname()
        name = self._type_qname(lexical)
        occ = self._occurrence()
        return ast.SequenceTypeAST("atomic", None, name, occ)

    def _occurrence(self) -> str:
        s = self.s
        # occurrence indicators bind tightly; '*' here is never multiplication
        if s.peek() in "?*+":
            ch = s.peek()
            s.pos += 1
            return ch
        return ""

    def _var_name(self) -> QName:
        lexical = self.s.scan_lexical_qname()
        if ":" in lexical:
            return QName.parse(lexical, self.ns, "")
        return QName("", lexical)

    def _function_qname(self, lexical: str) -> QName:
        if ":" in lexical:
            return QName.parse(lexical, self.ns, "")
        default = self.prolog.default_function_ns
        return QName(default if default is not None else FN_NS, lexical)

    def _type_qname(self, lexical: str) -> QName:
        if ":" in lexical:
            return QName.parse(lexical, self.ns, "")
        return QName("", lexical)


def parse_query(text: str) -> ast.Module:
    """Parse an XQuery main module."""
    return Parser(text).parse_module()
