"""Unparsing: core expression trees back to XQuery text.

The inverse of the parser (modulo normalization): any core tree the
compiler produces can be rendered as a query that parses and evaluates
to the same result.  Used for EXPLAIN-style output and for the
round-trip property tests (`parse → normalize → unparse → parse →
evaluate` must agree with direct evaluation).

Notes on fidelity:

- DDO operators render as their operand — re-parsing re-inserts them
  (DDO is idempotent, so semantics are unchanged);
- computed constructors are used everywhere (direct syntax carries
  whitespace subtleties the core tree no longer has);
- :class:`~repro.xquery.ast.ParamConvert` has no surface syntax; trees
  containing it (inlined typed functions) raise :class:`Unparsable`;
- names in namespaces get generated ``declare namespace`` prologs.
"""

from __future__ import annotations

from repro.qname import FN_NS, QName, XDT_NS, XS_NS
from repro.xquery import ast
from repro.xsd import types as T
from repro.xsd.casting import canonical_lexical


class Unparsable(ValueError):
    """The tree contains a construct with no surface syntax."""


_WELL_KNOWN = {XS_NS: "xs", XDT_NS: "xdt", FN_NS: "fn"}


class Unparser:
    def __init__(self):
        self._prefixes: dict[str, str] = {}

    # -- names ---------------------------------------------------------------

    def _prefix_for(self, uri: str) -> str:
        if uri in _WELL_KNOWN:
            return _WELL_KNOWN[uri]
        if uri not in self._prefixes:
            self._prefixes[uri] = f"ns{len(self._prefixes) + 1}"
        return self._prefixes[uri]

    def name(self, qname: QName) -> str:
        if not qname.uri:
            return qname.local
        return f"{self._prefix_for(qname.uri)}:{qname.local}"

    def var(self, qname: QName) -> str:
        # compiler-generated names contain '#'; rewrite to parseable form
        local = qname.local.replace("#", "__gen_")
        return "$" + (f"{self._prefix_for(qname.uri)}:{local}" if qname.uri else local)

    # -- entry ---------------------------------------------------------------

    def unparse(self, expr: ast.Expr) -> str:
        body = self.expr(expr)
        prolog = "".join(
            f"declare namespace {prefix} = '{uri}'; "
            for uri, prefix in self._prefixes.items())
        return prolog + body

    # -- expressions -----------------------------------------------------------

    def expr(self, e: ast.Expr) -> str:
        method = getattr(self, f"_u_{type(e).__name__}", None)
        if method is None:
            raise Unparsable(f"no unparse rule for {type(e).__name__}")
        return method(e)

    def _u_Literal(self, e: ast.Literal) -> str:
        value = e.value
        if value.type is T.XS_STRING or value.type is T.UNTYPED_ATOMIC:
            text = str(value.value).replace('"', '""')
            return f'"{text}"'
        if value.type.derives_from(T.XS_INTEGER):
            return str(value.value)
        if value.type.primitive is T.XS_DECIMAL:
            text = canonical_lexical(value.value, value.type)
            return text if "." in text else text + ".0"
        if value.type.primitive in (T.XS_DOUBLE, T.XS_FLOAT):
            lex = canonical_lexical(value.value, value.type)
            if lex in ("INF", "-INF", "NaN"):
                return f"xs:double('{lex}')"
            return lex if "e" in lex or "E" in lex else lex + "e0"
        if value.type.primitive is T.XS_BOOLEAN:
            return "fn:true()" if value.value else "fn:false()"
        # everything else via a constructor function on the lexical form
        type_name = self.name(value.type.name)
        return f"{type_name}('{value.lexical}')"

    def _u_EmptySequence(self, e) -> str:
        return "()"

    def _u_VarRef(self, e: ast.VarRef) -> str:
        return self.var(e.name)

    def _u_AccessPath(self, e: ast.AccessPath) -> str:
        # an index-backed access path has no surface syntax of its own;
        # its fallback is the original expression it replaced
        return self.expr(e.fallback)

    def _u_TwigJoin(self, e: ast.TwigJoin) -> str:
        # likewise: a twig-join plan unparses as the chain it replaced
        return self.expr(e.fallback)

    def _u_ContextItem(self, e) -> str:
        return "."

    def _u_SequenceExpr(self, e: ast.SequenceExpr) -> str:
        return "(" + ", ".join(self.expr(item) for item in e.items) + ")"

    def _u_RangeExpr(self, e: ast.RangeExpr) -> str:
        return f"({self.expr(e.low)} to {self.expr(e.high)})"

    def _u_ForExpr(self, e: ast.ForExpr) -> str:
        at = f" at {self.var(e.pos_var)}" if e.pos_var is not None else ""
        return (f"(for {self.var(e.var)}{at} in {self.expr(e.seq)} "
                f"return {self.expr(e.body)})")

    def _u_LetExpr(self, e: ast.LetExpr) -> str:
        return (f"(let {self.var(e.var)} := {self.expr(e.value)} "
                f"return {self.expr(e.body)})")

    def _u_Quantified(self, e: ast.Quantified) -> str:
        return (f"({e.kind} {self.var(e.var)} in {self.expr(e.seq)} "
                f"satisfies {self.expr(e.cond)})")

    def _u_IfExpr(self, e: ast.IfExpr) -> str:
        return (f"(if ({self.expr(e.cond)}) then {self.expr(e.then)} "
                f"else {self.expr(e.orelse)})")

    def _u_Typeswitch(self, e: ast.Typeswitch) -> str:
        parts = [f"(typeswitch ({self.expr(e.operand)})"]
        for case in e.cases:
            var = f"{self.var(case.var)} as " if case.var is not None else ""
            parts.append(f" case {var}{self.seq_type(case.seq_type)} "
                         f"return {self.expr(case.body)}")
        dvar = f"{self.var(e.default.var)} " if e.default.var is not None else ""
        parts.append(f" default {dvar}return {self.expr(e.default.body)})")
        return "".join(parts)

    def _u_InstanceOf(self, e: ast.InstanceOf) -> str:
        return f"({self.expr(e.operand)} instance of {self.seq_type(e.seq_type)})"

    def _u_CastExpr(self, e: ast.CastExpr) -> str:
        opt = "?" if e.optional else ""
        return f"({self.expr(e.operand)} cast as {self.name(e.type_name)}{opt})"

    def _u_CastableExpr(self, e: ast.CastableExpr) -> str:
        opt = "?" if e.optional else ""
        return f"({self.expr(e.operand)} castable as {self.name(e.type_name)}{opt})"

    def _u_TreatExpr(self, e: ast.TreatExpr) -> str:
        return f"({self.expr(e.operand)} treat as {self.seq_type(e.seq_type)})"

    def _u_ValidateExpr(self, e: ast.ValidateExpr) -> str:
        return f"validate {e.mode} {{ {self.expr(e.operand)} }}"

    def _u_ParamConvert(self, e: ast.ParamConvert) -> str:
        raise Unparsable("ParamConvert has no surface syntax "
                         "(inlined typed-function conversion)")

    def _u_AndExpr(self, e: ast.AndExpr) -> str:
        return f"({self.expr(e.left)} and {self.expr(e.right)})"

    def _u_OrExpr(self, e: ast.OrExpr) -> str:
        return f"({self.expr(e.left)} or {self.expr(e.right)})"

    def _u_Comparison(self, e: ast.Comparison) -> str:
        return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"

    def _u_Arithmetic(self, e: ast.Arithmetic) -> str:
        return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"

    def _u_UnaryExpr(self, e: ast.UnaryExpr) -> str:
        return f"({e.op}{self.expr(e.operand)})"

    def _u_SetOp(self, e: ast.SetOp) -> str:
        return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"

    # paths -----------------------------------------------------------------

    def _u_RootExpr(self, e) -> str:
        return "(/)"

    def _u_DDO(self, e: ast.DDO) -> str:
        # re-parsing re-inserts the DDO around path expressions
        return self.expr(e.operand)

    def _u_PathExpr(self, e: ast.PathExpr) -> str:
        left = self.expr(e.left)
        right = e.right
        if isinstance(right, (ast.Step, ast.Filter)):
            return f"{left}/{self._step_text(right)}"
        return f"{left}/({self.expr(right)})"

    def _u_Step(self, e: ast.Step) -> str:
        # a bare step applies to the context item: render as ./step
        return "./" + self._step_text(e)

    def _u_Filter(self, e: ast.Filter) -> str:
        if isinstance(e.base, (ast.Step,)):
            return "./" + self._step_text(e)
        return f"({self.expr(e.base)})[{self.expr(e.predicate)}]"

    def _step_text(self, e: ast.Expr) -> str:
        if isinstance(e, ast.Filter):
            return f"{self._step_text(e.base)}[{self.expr(e.predicate)}]"
        assert isinstance(e, ast.Step)
        return f"{e.axis}::{self._node_test(e.test)}"

    def _node_test(self, test: ast.NodeTest) -> str:
        kind = test.kind
        if kind in ("element", "attribute") or (kind == "node" and test.name):
            name = test.name
            if name is None:
                return f"{kind}()" if kind != "node" else "node()"
            if name.local == "*" and name.uri not in ("", "*"):
                return f"{self._prefix_for(name.uri)}:*"
            if name.uri == "*":
                return f"*:{name.local}"
            rendered = self.name(name)
            if kind in ("element", "attribute") and test.type_name is None:
                return rendered
            return rendered
        if kind == "document":
            return "document-node()"
        if kind == "processing-instruction" and test.pi_target:
            return f"processing-instruction('{test.pi_target}')"
        return f"{kind}()"

    # constructors -----------------------------------------------------------

    def _u_ElementCtor(self, e: ast.ElementCtor) -> str:
        name = self.name(e.name) if e.name is not None else \
            f"{{{self.expr(e.name_expr)}}}"
        parts = [self.expr(a) for a in e.attributes]
        parts += [self.expr(c) for c in e.content]
        if e.ns_decls:
            raise Unparsable("literal namespace declarations on constructors")
        body = ", ".join(parts) if parts else "()"
        return f"element {name} {{ {body} }}"

    def _u_AttributeCtor(self, e: ast.AttributeCtor) -> str:
        name = self.name(e.name) if e.name is not None else \
            f"{{{self.expr(e.name_expr)}}}"
        if not e.value_parts:
            return f"attribute {name} {{ () }}"
        # direct-constructor parts concatenate; computed form joins with
        # spaces — string-join the stringified parts for exactness
        rendered = ", ".join(
            f"string({self.expr(p)})" if not isinstance(p, ast.Literal)
            else self.expr(p)
            for p in e.value_parts)
        return (f"attribute {name} {{ fn:string-join(({rendered}), '') }}")

    def _u_TextCtor(self, e: ast.TextCtor) -> str:
        return f"text {{ {self.expr(e.content)} }}"

    def _u_CommentCtor(self, e: ast.CommentCtor) -> str:
        return f"comment {{ {self.expr(e.content)} }}"

    def _u_PICtor(self, e: ast.PICtor) -> str:
        target = e.target if e.target is not None else f"{{{self.expr(e.target_expr)}}}"
        return f"processing-instruction {target} {{ {self.expr(e.content)} }}"

    def _u_DocumentCtor(self, e: ast.DocumentCtor) -> str:
        return f"document {{ {self.expr(e.content)} }}"

    def _u_OrderedExpr(self, e: ast.OrderedExpr) -> str:
        keyword = "ordered" if e.ordered else "unordered"
        return f"{keyword} {{ {self.expr(e.operand)} }}"

    # functions / FLWOR --------------------------------------------------------

    def _u_FunctionCall(self, e: ast.FunctionCall) -> str:
        name = self.name(e.name)
        args = ", ".join(self.expr(a) for a in e.args)
        return f"{name}({args})"

    def _u_FLWOR(self, e: ast.FLWOR) -> str:
        parts = ["("]
        for clause in e.clauses:
            if isinstance(clause, ast.ForClause):
                at = f" at {self.var(clause.pos_var)}" if clause.pos_var else ""
                parts.append(f"for {self.var(clause.var)}{at} in "
                             f"{self.expr(clause.expr)} ")
            else:
                parts.append(f"let {self.var(clause.var)} := "
                             f"{self.expr(clause.expr)} ")
        if e.where is not None:
            parts.append(f"where {self.expr(e.where)} ")
        if e.group:
            rendered = ", ".join(f"{self.var(gvar)} := {self.expr(key)}"
                                 for gvar, key in e.group)
            parts.append(f"group by {rendered} ")
        if e.order:
            prefix = "stable order by " if e.stable else "order by "
            keys = []
            for spec in e.order:
                key = self.expr(spec.expr)
                if spec.descending:
                    key += " descending"
                key += " empty least" if spec.empty_least else " empty greatest"
                keys.append(key)
            parts.append(prefix + ", ".join(keys) + " ")
        parts.append(f"return {self.expr(e.ret)})")
        return "".join(parts)

    # types ----------------------------------------------------------------------

    def seq_type(self, st: ast.SequenceTypeAST) -> str:
        if st.item_kind == "empty":
            return "empty()"
        if st.item_kind == "atomic":
            return self.name(st.type_name) + st.occurrence
        if st.item_kind == "item":
            return "item()" + st.occurrence
        inner = self.name(st.name) if st.name is not None else ""
        kind = "document-node" if st.item_kind == "document" else st.item_kind
        return f"{kind}({inner})" + st.occurrence


def unparse(expr: ast.Expr) -> str:
    """Render a core expression tree as XQuery text."""
    return Unparser().unparse(expr)
