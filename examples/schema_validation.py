"""Typed vs untyped data — how validation changes query semantics.

Reproduces the tutorial's before/after-validation examples with a real
schema, including the famous '<a>3</a> eq 3' behaviour flip.

Run:  python examples/schema_validation.py
"""

from repro import Engine, execute_query, xml
from repro.xsd import Schema

SCHEMA_TEXT = """<schema>
  <simple name="rating" base="xs:integer" min="1" max="5"/>
  <type name="review-type">
    <sequence>
      <attribute name="stars" type="rating" use="required"/>
      <element name="product" type="xs:string"/>
      <sequence minoccurs="0" maxoccurs="unbounded">
        <element name="comment" type="xs:string"/>
      </sequence>
    </sequence>
  </type>
  <element name="review" type="review-type"/>
</schema>"""

DOC = ('<review stars="4"><product>Widget</product>'
       "<comment>solid</comment><comment>would buy again</comment></review>")


def main() -> None:
    schema = Schema.from_text(SCHEMA_TEXT)
    engine = Engine()

    # untyped: attribute compares as a string / via double coercion
    untyped = execute_query("$r/review/@stars = '4'", variables={"r": xml(DOC)})
    print("untyped  @stars = '4'  :", untyped.values())

    # validated: @stars is myNS:rating (an integer), arithmetic works
    compiled = engine.compile(
        "let $v := validate { $r/review } return data($v/@stars) + 1",
        variables=("r",), schemas=[schema])
    print("typed    @stars + 1    :",
          compiled.execute(variables={"r": xml(DOC)}).values())

    # the derived type's facets are enforced
    bad = DOC.replace('stars="4"', 'stars="9"')
    compiled = engine.compile("validate { $r/review }",
                              variables=("r",), schemas=[schema])
    try:
        compiled.execute(variables={"r": xml(bad)}).items()
        print("facet check: MISSED")
    except Exception as exc:
        print(f"facet check: stars=9 rejected ({type(exc).__name__})")

    # the tutorial's slide: typed vs untyped equality
    print("\nuntyped <a>3</a> eq 3 :", end=" ")
    try:
        execute_query("<a>3</a> eq 3").items()
        print("true?!")
    except Exception as exc:
        print(f"type error (as the slide says): {type(exc).__name__}")
    typed = execute_query(
        'validate { <a xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" '
        'xsi:type="xs:integer">3</a> } eq 3')
    print("typed   <a>3</a> eq 3 :", typed.values())


if __name__ == "__main__":
    main()
