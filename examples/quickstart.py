"""Quickstart: compile and run XQuery over XML with repro.

Run:  python examples/quickstart.py
"""

from repro import Engine, execute_query

BIB = """<bib>
  <book year="1967">
    <title>The politics of experience</title>
    <author><first>Ronald</first><last>Laing</last></author>
    <publisher>Penguin</publisher><price>20</price>
  </book>
  <book year="1998">
    <title>Data on the Web</title>
    <author><first>Serge</first><last>Abiteboul</last></author>
    <author><first>Dan</first><last>Suciu</last></author>
    <publisher>Morgan Kaufmann</publisher><price>39.95</price>
  </book>
  <book year="1998">
    <title>XML Query</title>
    <author><first>D</first><last>F</last></author>
    <publisher>Springer Verlag</publisher><price>55</price>
  </book>
</bib>"""


def main() -> None:
    # --- one-shot API ------------------------------------------------------
    result = execute_query("/bib/book[@year = '1998']/title", context_item=BIB)
    print("titles from 1998:")
    print(" ", result.serialize())

    # --- FLWOR with a join and ordering -------------------------------------
    query = """
    for $b in //book
    let $authors := $b/author
    where xs:decimal($b/price) lt 50
    order by xs:decimal($b/price) descending
    return
      <book title="{$b/title}" authors="{count($authors)}"
            price="{$b/price}"/>
    """
    print("\ncheap books, most expensive first:")
    print(" ", execute_query(query, context_item=BIB).serialize())

    # --- compile once, run many --------------------------------------------
    engine = Engine()
    compiled = engine.compile(
        "declare variable $max external; //book[xs:decimal(price) le $max]/title/text()")
    for max_price in (25, 45, 100):
        titles = compiled.execute(
            context_item=BIB, variables={"max": max_price}).values()
        print(f"\nbooks up to {max_price}: {titles}")

    # --- lazy evaluation: infinite sequences terminate ------------------------
    lazy = execute_query(
        "declare function local:nat($n as xs:integer) as xs:integer* "
        "{ ($n, local:nat($n + 1)) }; "
        "(local:nat(1))[5]")
    print("\n5th natural number from an infinite generator:", lazy.values())

    # --- group by (the engine's XQuery-3.0-style extension) -------------------
    grouped = execute_query(
        """for $b in //book
           group by $year := string($b/@year)
           order by $year
           return <year value="{$year}" books="{count($b)}"/>""",
        context_item=BIB)
    print("\nbooks per year:")
    print(" ", grouped.serialize())

    # --- see what the optimizer did ------------------------------------------
    compiled = engine.compile("/bib/book/title")
    print("\noptimized plan for /bib/book/title "
          "(note: no DDO operator — sort/dedup was proven unnecessary):")
    print(compiled.explain())


if __name__ == "__main__":
    main()
