"""XML message brokering with a shared lazy DFA.

The tutorial's message-broker scenario: many registered path queries,
a stream of small messages, and the requirement that per-message cost
not grow with the number of subscriptions.  Compares the lazy-DFA
broker against the per-query navigation baseline.

Run:  python examples/message_broker.py
"""

import time

from repro.stream import MessageBroker, NaiveBroker
from repro.workloads import generate_messages

SUBSCRIPTIONS = [
    ("fulfilment", "/order/lines/line"),
    ("billing", "/invoice/amount"),
    ("trading-desk", "//symbol"),
    ("logistics", "/shipnotice/tracking"),
    ("audit", "//*"),
]


def run(broker, messages):
    t0 = time.perf_counter()
    totals: dict[str, int] = {}
    for message in messages:
        for subscriber, count in broker.route(message).items():
            totals[subscriber] = totals.get(subscriber, 0) + count
    return totals, time.perf_counter() - t0


def main() -> None:
    messages = list(generate_messages(2000, seed=99))
    print(f"routing {len(messages)} messages to {len(SUBSCRIPTIONS)} base "
          f"subscriptions (plus 95 synthetic ones)\n")

    fast, naive = MessageBroker(), NaiveBroker()
    for broker in (fast, naive):
        for name, path in SUBSCRIPTIONS:
            broker.register(name, path)
        # inflate the registered-query count the way a real broker sees it
        for i in range(95):
            broker.register(f"probe{i}", f"//synthetic-tag-{i}")

    fast_totals, fast_seconds = run(fast, messages)
    naive_totals, naive_seconds = run(naive, messages)
    assert fast_totals == naive_totals, "brokers disagree!"

    print("deliveries per subscriber:")
    for name in sorted(fast_totals):
        print(f"  {name:14s} {fast_totals[name]:6d}")

    print(f"\nlazy-DFA broker : {fast_seconds:.3f} s "
          f"({len(messages) / fast_seconds:,.0f} msg/s)")
    print(f"naive broker    : {naive_seconds:.3f} s "
          f"({len(messages) / naive_seconds:,.0f} msg/s)")
    print(f"speedup         : {naive_seconds / fast_seconds:.1f}x")
    print(f"\nDFA states built: {fast.dfa.dfa_size} "
          f"(transitions computed {fast.dfa.computed_transitions}, "
          f"cache hits {fast.dfa.cached_hits:,})")


if __name__ == "__main__":
    main()
