"""The tutorial's 'fraction of a real customer XQuery', end to end.

Generates a WebLogic-Collaborate-style trading-partner configuration,
runs the large transformation query over it (nested FLWORs, five-way
joins, conditional attributes), and reports timing plus evaluation
statistics.

Run:  python examples/ebxml_transform.py [n_partners]
"""

import sys
import time

from repro import Engine, xml
from repro.workloads import EBXML_QUERY, generate_ebxml


def main(n_partners: int = 12) -> None:
    source = generate_ebxml(n_partners=n_partners, seed=2004)
    print(f"input: {len(source):,} bytes, {n_partners} trading partners")

    engine = Engine()
    t0 = time.perf_counter()
    compiled = engine.compile(EBXML_QUERY, variables=("input",))
    compile_ms = (time.perf_counter() - t0) * 1000
    print(f"compiled in {compile_ms:.1f} ms")

    t0 = time.perf_counter()
    result = compiled.execute(variables={"input": xml(source)})
    # pull the first item to show time-to-first-result
    iterator = iter(result)
    next(iterator)
    first_ms = (time.perf_counter() - t0) * 1000
    output = result.serialize()
    total_ms = (time.perf_counter() - t0) * 1000

    print(f"first result after {first_ms:.1f} ms; "
          f"full output ({len(output):,} bytes) after {total_ms:.1f} ms")
    print(f"elements constructed: {result.stats.get('elements_constructed', 0)}")
    print(f"doc-order sorts performed: {result.stats.get('ddo_sorts', 0)}")

    print("\nfirst 400 bytes of output:")
    print(output[:400])


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
