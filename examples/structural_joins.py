"""Structural pattern matching three ways: navigation, binary joins,
holistic TwigStack — over a labeled XMark document.

Run:  python examples/structural_joins.py [scale]
"""

import sys
import time

from repro.joins import TwigNode, TwigPattern, evaluate_pattern
from repro.storage import ElementIndex
from repro.workloads import generate_xmark
from repro.xdm.build import parse_document


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def main(scale: float = 0.3) -> None:
    xml = generate_xmark(scale=scale, seed=7)
    print(f"XMark document: {len(xml):,} bytes")

    doc, parse_s = timed(lambda: parse_document(xml))
    index, index_s = timed(lambda: ElementIndex(doc))
    print(f"parsed in {parse_s * 1000:.0f} ms, labeled+indexed in "
          f"{index_s * 1000:.0f} ms")
    print("posting-list sizes:",
          {name: index.cardinality(name)
           for name in ("item", "description", "keyword", "person", "bidder")})

    # item[.//keyword]//text — a branching twig
    root = TwigNode("item")
    root.add(TwigNode("keyword"), "descendant")
    out = root.add(TwigNode("text"), "descendant")
    out.is_output = True
    twig = TwigPattern(root)

    patterns = [
        ("//open_auction//increase",
         TwigPattern.chain("open_auction", ("increase", "descendant"))),
        ("//person/address/city",
         TwigPattern.chain("person", ("address", "child"), ("city", "child"))),
        ("item[.//keyword]//text", twig),
    ]

    for label, pattern in patterns:
        print(f"\npattern {label}:")
        baseline = None
        for algorithm in ("navigation", "binary", "twigstack"):
            result, seconds = timed(
                lambda a=algorithm: evaluate_pattern(index, pattern, a))
            if baseline is None:
                baseline = [p.pre for p in result]
            else:
                assert [p.pre for p in result] == baseline, "algorithms disagree!"
            print(f"  {algorithm:11s} {len(result):6d} matches in "
                  f"{seconds * 1000:8.2f} ms")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.3)
