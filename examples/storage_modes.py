"""The 'no one size fits all' storage-mode tour.

Stores the same document as plain text, a materialized tree, and a
pooled binary TokenStream, then shows what each is good and bad at —
the tutorial's Design Considerations slide, measured.

Run:  python examples/storage_modes.py
"""

import time

from repro import Engine
from repro.storage import TextStore, TokenStore, TreeStore
from repro.tokens import tokens_from_events, write_binary
from repro.workloads import generate_xmark
from repro.xmlio.parser import parse_events

QUERY = "count(/site/people/person[profile/age > 40])"


def main() -> None:
    xml = generate_xmark(scale=0.4, seed=21)
    print(f"document: {len(xml):,} bytes of XML text\n")

    stores = [TextStore(xml), TreeStore(xml), TokenStore(xml)]
    engine = Engine()
    compiled = engine.compile(QUERY)

    print(f"{'store':8s} {'resident':>12s} {'1st query':>12s} {'5 more':>12s}")
    for store in stores:
        t0 = time.perf_counter()
        doc = store.document()
        first = compiled.execute(context_item=doc).values()
        first_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            doc = store.document()  # text re-parses; others reuse
            compiled.execute(context_item=doc).values()
        more_s = time.perf_counter() - t0
        print(f"{store.kind:8s} {store.resident_bytes():>11,}B "
              f"{first_s * 1000:>10.1f}ms {more_s * 1000:>10.1f}ms   -> {first}")

    # pooling: dictionary compression of names and text
    tokens = list(tokens_from_events(parse_events(xml)))
    pooled = write_binary(tokens, pooled=True)
    plain = write_binary(tokens, pooled=False)
    print(f"\nbinary TokenStream : {len(plain):,} B unpooled, "
          f"{len(pooled):,} B pooled "
          f"({len(plain) / len(pooled):.2f}x smaller; "
          f"text was {len(xml):,} B)")


if __name__ == "__main__":
    main()
