"""Streaming: results before the input finishes parsing.

Feeds a large document through the streaming path matcher and shows
(a) time-to-first-result vs full materialization, and (b) bounded
memory: only matching subtrees are ever built.

Run:  python examples/streaming_pipeline.py [scale]
"""

import sys
import time

from repro import Engine
from repro.stream import parse_path, stream_path
from repro.workloads import generate_xmark
from repro.xmlio.parser import parse_events

PATH = "/site/people/person/name"


def main(scale: float = 1.0) -> None:
    xml = generate_xmark(scale=scale, seed=5)
    print(f"document: {len(xml):,} bytes; query: {PATH}\n")

    # --- streaming: pull just the first match -------------------------------
    consumed = [0]

    def counted_events():
        for event in parse_events(xml):
            consumed[0] += 1
            yield event

    t0 = time.perf_counter()
    matches = stream_path(counted_events(), parse_path(PATH))
    first = next(matches)
    first_ms = (time.perf_counter() - t0) * 1000
    total_events = sum(1 for _ in parse_events(xml))
    print(f"streaming: first match {first.string_value!r} after "
          f"{first_ms:.1f} ms, consuming {consumed[0]:,} of "
          f"{total_events:,} events "
          f"({100 * consumed[0] / total_events:.1f}% of the input)")

    t0 = time.perf_counter()
    count = 1 + sum(1 for _ in matches)
    print(f"streaming: all {count} matches in "
          f"{(time.perf_counter() - t0) * 1000 + first_ms:.1f} ms total")

    # --- materializing engine ------------------------------------------------
    engine = Engine()
    compiled = engine.compile(f"for $n in {PATH} return $n")
    t0 = time.perf_counter()
    result = compiled.execute(context_item=xml)  # parses the whole tree
    iterator = iter(result)
    next(iterator)
    mat_first_ms = (time.perf_counter() - t0) * 1000
    rest = 1 + sum(1 for _ in iterator)
    mat_total_ms = (time.perf_counter() - t0) * 1000
    print(f"\nmaterialized engine: first match after {mat_first_ms:.1f} ms "
          f"(must parse everything first), all {rest} matches in "
          f"{mat_total_ms:.1f} ms")
    print(f"\ntime-to-first-result speedup: "
          f"{mat_first_ms / max(first_ms, 1e-6):.0f}x")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
